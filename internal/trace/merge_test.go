package trace

import (
	"reflect"
	"testing"
)

func TestMergeCanonicalEqualsSortedConcat(t *testing.T) {
	a := []Event{
		{At: 0.2, Kind: KindLinkUp, Host: 1},
		{At: 0.1, Kind: KindLinkDown, Host: 1, Value: 0.05},
	}
	b := []Event{
		{At: 0.1, Kind: KindLinkDown, Host: 0, Value: 0.05},
		{At: 0.1, Kind: KindJobStart, Job: 2},
	}
	got := MergeCanonical(a, b)
	want := []Event{
		{At: 0.1, Kind: KindJobStart, Job: 2},
		{At: 0.1, Kind: KindLinkDown, Host: 0, Value: 0.05},
		{At: 0.1, Kind: KindLinkDown, Host: 1, Value: 0.05},
		{At: 0.2, Kind: KindLinkUp, Host: 1},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("MergeCanonical = %+v, want %+v", got, want)
	}
	// Inputs untouched.
	if a[0].At != 0.2 || b[0].Host != 0 {
		t.Fatal("MergeCanonical modified an input stream")
	}
}

// TestMergeCanonicalPartitionInvariance is the property the sharded
// engine relies on: however a stream is partitioned across shards,
// merging the parts canonically yields one identical sequence.
func TestMergeCanonicalPartitionInvariance(t *testing.T) {
	all := []Event{
		{At: 0.3, Kind: KindTcConfig, Job: 1, Host: 2, Detail: "b"},
		{At: 0.1, Kind: KindJobStart, Job: 0, Host: 0},
		{At: 0.3, Kind: KindTcConfig, Job: 1, Host: 2, Detail: "a"},
		{At: 0.2, Kind: KindFlowDone, Job: 0, Host: 1, Value: 7},
		{At: 0.3, Kind: KindTcConfig, Job: 0, Host: 2},
		{At: 0.1, Kind: KindJobStart, Job: 1, Host: 3},
	}
	whole := MergeCanonical(all)
	for split := 0; split <= len(all); split++ {
		got := MergeCanonical(all[:split], all[split:])
		if !reflect.DeepEqual(got, whole) {
			t.Fatalf("split %d: merged partition differs from whole", split)
		}
	}
}

func TestLessCanonicalIsStrictOrder(t *testing.T) {
	e := Event{At: 1, Kind: KindCustom, Job: 1, Host: 1, Worker: 1, Value: 1, Detail: "x"}
	if LessCanonical(e, e) {
		t.Fatal("LessCanonical(e, e) = true; must be irreflexive")
	}
	lo := Event{At: 1, Kind: KindCustom, Job: 1, Host: 1, Worker: 1, Value: 1, Detail: "w"}
	if !LessCanonical(lo, e) || LessCanonical(e, lo) {
		t.Fatal("LessCanonical not antisymmetric on Detail tie-break")
	}
}
