package dl

import (
	"testing"

	"repro/internal/trace"
)

// soloJCT runs the reference scenario untouched and returns its JCT, so
// fault times below can be placed mid-run regardless of model timings.
func soloJCT(t *testing.T, spec JobSpec) float64 {
	t.Helper()
	env := newEnv(99)
	j, err := NewJob(env, spec)
	if err != nil {
		t.Fatal(err)
	}
	j.Start()
	env.K.Run(nil)
	if !j.Done() {
		t.Fatal("reference job did not finish")
	}
	return j.JCT()
}

func recoverySpec(steps int) JobSpec {
	s := smallSpec(0, steps)
	s.Recovery = RecoveryConfig{
		DetectTimeoutSec:  0.05,
		RestartBackoffSec: 0.02,
		MaxRestarts:       3,
	}
	return s
}

func TestRecoveryConfigValidate(t *testing.T) {
	bad := []RecoveryConfig{
		{DetectTimeoutSec: -1},
		{RestartBackoffSec: -1},
		{MaxRestarts: -1},
	}
	for i, r := range bad {
		if r.Validate() == nil {
			t.Fatalf("case %d: invalid recovery config accepted", i)
		}
		s := smallSpec(0, 10)
		s.Recovery = r
		if s.Validate() == nil {
			t.Fatalf("case %d: job spec did not surface recovery error", i)
		}
	}
	if (RecoveryConfig{}).Validate() != nil {
		t.Fatal("zero recovery config rejected")
	}
}

func TestCrashWithoutDetectionBlocks(t *testing.T) {
	spec := smallSpec(0, 60) // zero Recovery: no detection
	ref := soloJCT(t, spec)
	env := newEnv(99)
	j, _ := NewJob(env, spec)
	j.Start()
	env.K.Schedule(ref/3, func() { j.CrashWorker(1) })
	env.K.Run(nil)
	if j.Done() || j.Failed() {
		t.Fatalf("undetected crash should block the barrier forever: done=%v failed=%v",
			j.Done(), j.Failed())
	}
	if j.AliveWorkers() != 2 {
		t.Fatalf("alive workers %d, want 2", j.AliveWorkers())
	}
}

func TestWorkerCrashRestartCompletes(t *testing.T) {
	spec := recoverySpec(60)
	ref := soloJCT(t, spec)
	env := newEnv(99)
	buf := &trace.Buffer{}
	env.Tracer = buf
	j, _ := NewJob(env, spec)
	j.Start()
	env.K.Schedule(ref/3, func() { j.CrashWorker(1) })
	env.K.Run(nil)
	if !j.Done() {
		t.Fatal("job did not recover from a restartable crash")
	}
	if j.GlobalStep() != 60 {
		t.Fatalf("global step %d, want 60", j.GlobalStep())
	}
	if j.Restarts() != 1 || j.DegradedWorkers() != 0 {
		t.Fatalf("restarts %d degraded %d, want 1/0", j.Restarts(), j.DegradedWorkers())
	}
	if j.JCT() <= ref {
		t.Fatalf("crashed run JCT %v not slower than healthy %v", j.JCT(), ref)
	}
	var crashes, restarts int
	for _, e := range buf.Events() {
		switch e.Kind {
		case trace.KindWorkerCrash:
			crashes++
		case trace.KindWorkerRestart:
			restarts++
		}
	}
	if crashes != 1 || restarts != 1 {
		t.Fatalf("trace crashes %d restarts %d", crashes, restarts)
	}
}

func TestWorkerCrashDegradesToSurvivors(t *testing.T) {
	spec := recoverySpec(60)
	spec.Recovery.MaxRestarts = 0 // first detection abandons the worker
	ref := soloJCT(t, spec)
	env := newEnv(99)
	buf := &trace.Buffer{}
	env.Tracer = buf
	j, _ := NewJob(env, spec)
	j.Start()
	env.K.Schedule(ref/3, func() { j.CrashWorker(2) })
	env.K.Run(nil)
	if !j.Done() {
		t.Fatal("degraded job did not finish")
	}
	if j.DegradedWorkers() != 1 || j.AliveWorkers() != 2 {
		t.Fatalf("degraded %d alive %d, want 1/2", j.DegradedWorkers(), j.AliveWorkers())
	}
	if j.Restarts() != 0 {
		t.Fatalf("restarts %d, want 0", j.Restarts())
	}
	var degrades int
	for _, e := range buf.Events() {
		if e.Kind == trace.KindWorkerDegrade {
			degrades++
		}
	}
	if degrades != 1 {
		t.Fatalf("degrade events %d", degrades)
	}
	// The abandoned worker performed no further local steps after the
	// crash; survivors carried the job to the target.
	dead := j.workers[2]
	if !dead.degraded {
		t.Fatal("worker 2 not marked degraded")
	}
	total := 0
	for _, w := range j.workers {
		total += w.localStep
	}
	if total < 60 {
		t.Fatalf("local steps sum %d < target", total)
	}
}

func TestRepeatedCrashesExhaustRestartBudget(t *testing.T) {
	spec := recoverySpec(90)
	spec.Recovery.MaxRestarts = 1
	ref := soloJCT(t, spec)
	env := newEnv(99)
	j, _ := NewJob(env, spec)
	j.Start()
	// Crash the same worker twice: the first detection restarts it, the
	// second abandons it.
	env.K.Schedule(ref/4, func() { j.CrashWorker(0) })
	env.K.Schedule(ref/2, func() { j.CrashWorker(0) })
	env.K.Run(nil)
	if !j.Done() {
		t.Fatal("job did not finish")
	}
	if j.Restarts() != 1 || j.DegradedWorkers() != 1 {
		t.Fatalf("restarts %d degraded %d, want 1/1", j.Restarts(), j.DegradedWorkers())
	}
}

func TestAllWorkersLostFailsJob(t *testing.T) {
	spec := recoverySpec(600)
	spec.Recovery.MaxRestarts = 0
	ref := soloJCT(t, recoverySpec(60)) // short reference for timing only
	env := newEnv(99)
	buf := &trace.Buffer{}
	env.Tracer = buf
	j, _ := NewJob(env, spec)
	j.Start()
	for i := 0; i < 3; i++ {
		i := i
		env.K.Schedule(ref/3+float64(i)*0.01, func() { j.CrashWorker(i) })
	}
	env.K.Run(nil)
	if !j.Failed() || j.Done() || j.Running() {
		t.Fatalf("job state after losing all workers: failed=%v done=%v running=%v",
			j.Failed(), j.Done(), j.Running())
	}
	if j.JCT() != -1 {
		t.Fatalf("failed job reported JCT %v", j.JCT())
	}
	var fails int
	for _, e := range buf.Events() {
		if e.Kind == trace.KindJobFail {
			fails++
		}
	}
	if fails != 1 {
		t.Fatalf("job fail events %d", fails)
	}
}

func TestAsyncCrashRestartCompletes(t *testing.T) {
	spec := recoverySpec(90)
	spec.Async = true
	ref := soloJCT(t, spec)
	env := newEnv(99)
	j, _ := NewJob(env, spec)
	j.Start()
	env.K.Schedule(ref/3, func() { j.CrashWorker(1) })
	env.K.Run(nil)
	if !j.Done() {
		t.Fatal("async job did not recover")
	}
	if j.Restarts() != 1 {
		t.Fatalf("restarts %d, want 1", j.Restarts())
	}
}

func TestCrashRecoveryDeterministic(t *testing.T) {
	run := func() (float64, int) {
		env := newEnv(123)
		spec := recoverySpec(60)
		j, _ := NewJob(env, spec)
		j.Start()
		env.K.Schedule(0.5, func() { j.CrashWorker(0) })
		env.K.Schedule(1.0, func() { j.CrashWorker(2) })
		env.K.Run(nil)
		return j.FinishedAt, j.Restarts()
	}
	f1, r1 := run()
	f2, r2 := run()
	if f1 != f2 || r1 != r2 {
		t.Fatalf("same seed diverged: (%v,%d) vs (%v,%d)", f1, r1, f2, r2)
	}
}

func TestCrashOnDeadWorkerIsIdempotent(t *testing.T) {
	spec := recoverySpec(60)
	ref := soloJCT(t, spec)
	env := newEnv(99)
	j, _ := NewJob(env, spec)
	j.Start()
	at := ref / 3
	env.K.Schedule(at, func() {
		j.CrashWorker(1)
		j.CrashWorker(1) // second crash of a dead worker: no-op
	})
	env.K.Run(nil)
	if !j.Done() || j.Restarts() != 1 {
		t.Fatalf("done=%v restarts=%d, want true/1", j.Done(), j.Restarts())
	}
}

func TestCrashWorkerOutOfRangePanics(t *testing.T) {
	env := newEnv(99)
	j, _ := NewJob(env, recoverySpec(10))
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range worker index accepted")
		}
	}()
	j.CrashWorker(7)
}
