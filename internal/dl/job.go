package dl

import (
	"fmt"

	"repro/internal/cpusim"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// Env is the substrate a job runs on: the shared kernel, network fabric
// and per-host CPUs built by internal/cluster.
type Env struct {
	K      *sim.Kernel
	Fabric *simnet.Fabric
	CPUs   []*cpusim.CPU
	RNG    *sim.RNG
	// Tracer, when non-nil, receives job lifecycle and barrier events.
	Tracer trace.Tracer
}

// emit sends a trace event if tracing is enabled.
func (e *Env) emit(ev trace.Event) {
	if e.Tracer != nil {
		e.Tracer.Emit(ev)
	}
}

// JobSpec is the static description of one distributed training job.
type JobSpec struct {
	ID    int
	Name  string
	Model Model
	// NumWorkers is the number of remote worker tasks.
	NumWorkers int
	// LocalBatch is samples per worker per local step (the paper's
	// "local batch size", its contention-intensity knob).
	LocalBatch int
	// TargetGlobalSteps ends the job once the sum of all workers'
	// local steps reaches it (30 000 in the paper).
	TargetGlobalSteps int
	// Async selects asynchronous training (no barrier).
	Async bool
	// PSHost and PSPort place and identify the parameter server; the
	// paper keys a job's priority off its PS's TCP port.
	PSHost int
	PSPort int
	// WorkerHosts lists each worker's host (length NumWorkers).
	WorkerHosts []int
	// ComputeJitterSigma is the lognormal sigma on per-step compute
	// time (default 0.15 when zero, reflecting the heavy CPU
	// oversubscription of the paper's testbed).
	ComputeJitterSigma float64
	// ProgressEvery records a progress point each time the global step
	// crosses a multiple of this value (0 disables).
	ProgressEvery int
	// GradCompression divides the gradient-update size (worker -> PS),
	// modelling QSGD/TernGrad-style compressed gradients, which the
	// paper's related work positions as complementary to TensorLights.
	// 1 (or 0) means uncompressed; must be >= 1.
	GradCompression float64
	// Recovery configures crash detection and handling for worker
	// tasks (see Job.CrashWorker). The zero value disables detection:
	// a crashed worker's barrier peers block until the simulation's
	// event queue drains.
	Recovery RecoveryConfig
}

// RecoveryConfig tunes how a job reacts to a crashed worker task. The
// PS runs a failure detector (in a real deployment: a heartbeat or
// barrier watchdog); DetectTimeoutSec after a worker dies, the job
// either restarts it or degrades to continuing without it.
type RecoveryConfig struct {
	// DetectTimeoutSec is how long a crashed worker goes unnoticed
	// while its barrier peers block. 0 disables detection entirely.
	DetectTimeoutSec float64
	// RestartBackoffSec delays the restart after detection (task
	// rescheduling + process start). Only meaningful with MaxRestarts
	// greater than zero.
	RestartBackoffSec float64
	// MaxRestarts bounds restarts per worker. A worker that crashes
	// more than MaxRestarts times is abandoned and the job degrades,
	// continuing the barrier with the remaining workers.
	MaxRestarts int
}

// Validate reports recovery configuration errors.
func (r RecoveryConfig) Validate() error {
	if r.DetectTimeoutSec < 0 {
		return fmt.Errorf("dl: negative DetectTimeoutSec %g", r.DetectTimeoutSec)
	}
	if r.RestartBackoffSec < 0 {
		return fmt.Errorf("dl: negative RestartBackoffSec %g", r.RestartBackoffSec)
	}
	if r.MaxRestarts < 0 {
		return fmt.Errorf("dl: negative MaxRestarts %d", r.MaxRestarts)
	}
	return nil
}

// Validate reports spec errors.
func (s JobSpec) Validate() error {
	if err := s.Model.Validate(); err != nil {
		return err
	}
	if s.NumWorkers < 1 {
		return fmt.Errorf("dl: job %d needs >=1 worker", s.ID)
	}
	if len(s.WorkerHosts) != s.NumWorkers {
		return fmt.Errorf("dl: job %d has %d worker hosts for %d workers",
			s.ID, len(s.WorkerHosts), s.NumWorkers)
	}
	if s.TargetGlobalSteps < 1 {
		return fmt.Errorf("dl: job %d needs a positive step target", s.ID)
	}
	if s.LocalBatch < 1 {
		return fmt.Errorf("dl: job %d needs a positive local batch", s.ID)
	}
	for _, h := range s.WorkerHosts {
		if h == s.PSHost {
			return fmt.Errorf("dl: job %d places a worker on its PS host %d", s.ID, h)
		}
	}
	if s.GradCompression != 0 && s.GradCompression < 1 {
		return fmt.Errorf("dl: job %d gradient compression %.2f < 1", s.ID, s.GradCompression)
	}
	if err := s.Recovery.Validate(); err != nil {
		return fmt.Errorf("dl: job %d: %w", s.ID, err)
	}
	return nil
}

// gradBytes is the (possibly compressed) gradient update size.
func (s JobSpec) gradBytes() int64 {
	b := s.Model.UpdateBytes()
	if s.GradCompression > 1 {
		b = int64(float64(b) / s.GradCompression)
		if b < 1 {
			b = 1
		}
	}
	return b
}

// ProgressPoint is one (time, global step) sample.
type ProgressPoint struct {
	At   float64
	Step int
}

// Job is the runtime state of one training job.
type Job struct {
	Spec JobSpec
	env  *Env
	rng  *sim.RNG

	StartedAt  float64
	FinishedAt float64 // -1 while running
	FailedAt   float64 // -1 unless every worker was lost

	globalStep int
	iteration  int // barrier index for the PS
	applied    int // gradients applied in the current iteration
	// barrierSize is how many workers the synchronous barrier waits
	// for; it shrinks when a worker is permanently degraded away.
	barrierSize int

	restarts      int // total worker restarts performed
	degradedCount int // workers permanently removed from the job

	workers []*worker

	// waits[iteration][workerIdx] is the barrier wait time; -1 = unset.
	waits [][]float64

	progress []ProgressPoint

	// OnFinish fires once when the job reaches its step target.
	OnFinish func(*Job)
	// OnFail fires once if the job loses every worker and stops short of
	// its target.
	OnFail func(*Job)
	// OnBarrier fires at each synchronous barrier release with the
	// just-completed iteration index; controllers use it to track job
	// progress without touching application internals.
	OnBarrier func(*Job, int)
}

// worker tracks one worker task.
type worker struct {
	idx       int
	host      int
	port      int
	localStep int
	// enterAt is the time this worker's gradient reached the PS for
	// the current barrier; -1 when not waiting.
	enterAt   float64
	enterIter int
	compute   *cpusim.Task

	// Failure state. A dead worker may come back via restart; a
	// degraded worker is out of the job for good.
	dead     bool
	degraded bool
	restarts int
	// lastAppliedIter is the barrier iteration this worker's gradient
	// was last applied in; -1 before the first. It tells recovery
	// whether the worker already contributed to the open barrier.
	lastAppliedIter int
}

// active reports whether the worker currently participates in the job.
func (w *worker) active() bool { return !w.dead && !w.degraded }

// NewJob builds a job in the environment. Call Start to launch it.
func NewJob(env *Env, spec JobSpec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.ComputeJitterSigma == 0 {
		spec.ComputeJitterSigma = 0.15
	}
	j := &Job{
		Spec:        spec,
		env:         env,
		rng:         env.RNG.Stream(fmt.Sprintf("job-%d", spec.ID)),
		StartedAt:   -1,
		FinishedAt:  -1,
		FailedAt:    -1,
		barrierSize: spec.NumWorkers,
	}
	for i := 0; i < spec.NumWorkers; i++ {
		j.workers = append(j.workers, &worker{
			idx:             i,
			host:            spec.WorkerHosts[i],
			port:            30000 + spec.ID*100 + i,
			enterAt:         -1,
			lastAppliedIter: -1,
		})
	}
	return j, nil
}

// Running reports whether the job has started and neither finished nor
// failed.
func (j *Job) Running() bool {
	return j.StartedAt >= 0 && j.FinishedAt < 0 && j.FailedAt < 0
}

// Done reports whether the job reached its step target.
func (j *Job) Done() bool { return j.FinishedAt >= 0 }

// Failed reports whether the job lost every worker and stopped.
func (j *Job) Failed() bool { return j.FailedAt >= 0 }

// halted reports whether the job stopped for any reason; event callbacks
// landing after this point are ignored.
func (j *Job) halted() bool { return j.FinishedAt >= 0 || j.FailedAt >= 0 }

// Restarts returns the total worker restarts performed so far.
func (j *Job) Restarts() int { return j.restarts }

// DegradedWorkers returns how many workers were permanently removed.
func (j *Job) DegradedWorkers() int { return j.degradedCount }

// AliveWorkers counts workers currently participating in the job.
func (j *Job) AliveWorkers() int {
	n := 0
	for _, w := range j.workers {
		if w.active() {
			n++
		}
	}
	return n
}

// GlobalStep returns the current global step.
func (j *Job) GlobalStep() int { return j.globalStep }

// JCT returns the job completion time, or -1 if unfinished.
func (j *Job) JCT() float64 {
	if !j.Done() {
		return -1
	}
	return j.FinishedAt - j.StartedAt
}

// Progress returns recorded progress points.
func (j *Job) Progress() []ProgressPoint { return j.progress }

// Start launches the job now: the PS marshals and distributes the
// initial model.
func (j *Job) Start() {
	if j.StartedAt >= 0 {
		panic(fmt.Sprintf("dl: job %d started twice", j.Spec.ID))
	}
	j.StartedAt = j.env.K.Now()
	j.env.emit(trace.Event{
		At: j.StartedAt, Kind: trace.KindJobStart,
		Job: j.Spec.ID, Host: j.Spec.PSHost, Worker: -1,
	})
	j.serializeAndBroadcast()
}

// serializeAndBroadcast runs the PS's outbound marshalling on the PS
// host CPU, then sends the model to every worker. The marshalling cost
// scales with fan-out and colocation: on a host packed with parameter
// servers it is a contended-CPU floor that no NIC scheduling removes.
func (j *Job) serializeAndBroadcast() {
	work := float64(j.AliveWorkers()) * j.Spec.Model.SerializeSec()
	j.env.CPUs[j.Spec.PSHost].Submit(work, 1, func() {
		if j.halted() {
			return
		}
		j.broadcastModel()
	})
}

// broadcastModel sends the current model to every worker in one burst —
// the bursty, high-fan-out traffic at the heart of the paper.
func (j *Job) broadcastModel() {
	specs := make([]simnet.FlowSpec, 0, len(j.workers))
	for _, w := range j.workers {
		if !w.active() {
			// A dead worker rejoins via restartWorker; a degraded one
			// never does.
			continue
		}
		w := w
		specs = append(specs, simnet.FlowSpec{
			Src:     j.Spec.PSHost,
			Dst:     w.host,
			SrcPort: j.Spec.PSPort,
			DstPort: w.port,
			JobID:   j.Spec.ID,
			Bytes:   j.Spec.Model.UpdateBytes(),
			OnComplete: func(*simnet.Flow) {
				j.workerGotModel(w)
			},
			Transient: true, // nothing retains the flow past OnComplete
		})
	}
	if len(specs) == 0 {
		return
	}
	j.env.Fabric.SendBurst(j.Spec.PSHost, specs)
}

// sendModelTo unicasts the model to one worker (async mode).
func (j *Job) sendModelTo(w *worker) {
	j.env.Fabric.Send(simnet.FlowSpec{
		Src:     j.Spec.PSHost,
		Dst:     w.host,
		SrcPort: j.Spec.PSPort,
		DstPort: w.port,
		JobID:   j.Spec.ID,
		Bytes:   j.Spec.Model.UpdateBytes(),
		OnComplete: func(*simnet.Flow) {
			j.workerGotModel(w)
		},
		Transient: true, // nothing retains the flow past OnComplete
	})
}

// workerGotModel fires when a model update fully arrives at a worker:
// the worker exits the barrier (recording its wait) and starts computing
// its next local batch.
func (j *Job) workerGotModel(w *worker) {
	now := j.env.K.Now()
	if w.enterAt >= 0 {
		j.recordWait(w.enterIter, w.idx, now-w.enterAt)
		w.enterAt = -1
	}
	if j.halted() || !w.active() || w.compute != nil {
		// A model copy may land on a crashed worker (it was in flight
		// at the crash) or race a restart's re-send; never double-start
		// the local computation.
		return
	}
	j.startCompute(w)
}

// startCompute runs one local step on the worker host's shared CPU.
func (j *Job) startCompute(w *worker) {
	work := j.Spec.Model.StepComputeSec(j.Spec.LocalBatch) *
		j.rng.LogNormalFactor(j.Spec.ComputeJitterSigma)
	w.compute = j.env.CPUs[w.host].Submit(work, 1, func() {
		w.compute = nil
		j.computeDone(w)
	})
}

// computeDone pushes the worker's gradient update to the PS.
func (j *Job) computeDone(w *worker) {
	if j.halted() || !w.active() {
		return
	}
	w.localStep++
	j.env.Fabric.Send(simnet.FlowSpec{
		Src:     w.host,
		Dst:     j.Spec.PSHost,
		SrcPort: w.port,
		DstPort: j.Spec.PSPort,
		JobID:   j.Spec.ID,
		Bytes:   j.Spec.gradBytes(),
		OnComplete: func(*simnet.Flow) {
			j.psGotGradient(w)
		},
		Transient: true, // nothing retains the flow past OnComplete
	})
}

// psGotGradient fires when a gradient update fully arrives at the PS.
// The worker is now waiting at the barrier; the PS applies the gradient
// on its host CPU and, in synchronous mode, releases the barrier once
// every worker's gradient has been applied.
func (j *Job) psGotGradient(w *worker) {
	if j.halted() || w.degraded {
		// A degraded worker's in-flight gradient is discarded; one from
		// a merely dead worker still applies — the bytes reached the PS
		// before the crash took effect.
		return
	}
	now := j.env.K.Now()
	j.globalStep++
	j.recordProgress(now)
	if j.globalStep >= j.Spec.TargetGlobalSteps {
		j.finish(now)
		return
	}
	w.enterAt = now
	w.enterIter = j.iteration
	apply := j.Spec.Model.PSApplySecPerGrad
	j.env.CPUs[j.Spec.PSHost].Submit(apply, 1, func() {
		j.gradientApplied(w)
	})
}

// gradientApplied advances the barrier (sync) or answers the worker
// immediately (async).
func (j *Job) gradientApplied(w *worker) {
	if j.halted() || w.degraded {
		return
	}
	if j.Spec.Async {
		j.env.CPUs[j.Spec.PSHost].Submit(j.Spec.Model.SerializeSec(), 1, func() {
			if j.halted() || !w.active() {
				return
			}
			j.sendModelTo(w)
		})
		return
	}
	if w.lastAppliedIter == j.iteration {
		// Duplicate contribution: a restarted worker raced its own
		// in-flight gradient. The barrier counts each worker once.
		return
	}
	w.lastAppliedIter = j.iteration
	j.applied++
	j.maybeReleaseBarrier()
}

// maybeReleaseBarrier ends the iteration once every participating
// worker's gradient has been applied. The barrier size tracks live
// membership: it shrinks when a worker is degraded away.
func (j *Job) maybeReleaseBarrier() {
	if j.applied < j.barrierSize {
		return
	}
	j.applied = 0
	j.iteration++
	j.env.emit(trace.Event{
		At: j.env.K.Now(), Kind: trace.KindBarrierRelease,
		Job: j.Spec.ID, Host: j.Spec.PSHost, Worker: -1,
		Value: float64(j.iteration),
	})
	if j.OnBarrier != nil {
		j.OnBarrier(j, j.iteration)
	}
	j.serializeAndBroadcast()
}

// finish marks the job done, cancels in-flight compute and reports.
func (j *Job) finish(now float64) {
	j.FinishedAt = now
	j.env.emit(trace.Event{
		At: now, Kind: trace.KindJobFinish,
		Job: j.Spec.ID, Host: j.Spec.PSHost, Worker: -1,
		Value: now - j.StartedAt,
	})
	for _, w := range j.workers {
		if w.compute != nil {
			j.env.CPUs[w.host].Cancel(w.compute)
			w.compute = nil
		}
	}
	if j.OnFinish != nil {
		j.OnFinish(j)
	}
}

// CrashWorker kills worker idx now: its in-flight local computation is
// lost and it stops participating until restarted. Bytes already handed
// to the network still arrive (TCP delivers what reached the wire).
// With Recovery.DetectTimeoutSec > 0 the PS's failure detector notices
// the crash after that timeout and either restarts the worker (after
// RestartBackoffSec) or, past MaxRestarts, degrades the job to continue
// without it. With detection disabled, a synchronous job's surviving
// workers block at the barrier indefinitely.
func (j *Job) CrashWorker(idx int) {
	if idx < 0 || idx >= len(j.workers) {
		panic(fmt.Sprintf("dl: job %d has no worker %d", j.Spec.ID, idx))
	}
	w := j.workers[idx]
	if j.halted() || !w.active() {
		return
	}
	now := j.env.K.Now()
	w.dead = true
	if w.compute != nil {
		j.env.CPUs[w.host].Cancel(w.compute)
		w.compute = nil
	}
	j.env.emit(trace.Event{
		At: now, Kind: trace.KindWorkerCrash,
		Job: j.Spec.ID, Host: w.host, Worker: w.idx,
	})
	if d := j.Spec.Recovery.DetectTimeoutSec; d > 0 {
		j.env.K.PostAfter(d, func() { j.workerFailureDetected(w) })
	}
}

// workerFailureDetected is the PS's failure detector firing: restart
// the worker if it has restart budget left, otherwise abandon it.
func (j *Job) workerFailureDetected(w *worker) {
	if j.halted() || !w.dead || w.degraded {
		return
	}
	if w.restarts >= j.Spec.Recovery.MaxRestarts {
		j.degradeWorker(w)
		return
	}
	j.env.K.PostAfter(j.Spec.Recovery.RestartBackoffSec, func() {
		j.restartWorker(w)
	})
}

// restartWorker brings a crashed worker back. If its gradient already
// counts toward the open barrier it simply rejoins and receives the
// model at the next release like any waiting worker; otherwise the PS
// re-serializes and resends the current model so it can resume.
func (j *Job) restartWorker(w *worker) {
	if j.halted() || !w.dead || w.degraded {
		return
	}
	w.dead = false
	w.restarts++
	j.restarts++
	j.env.emit(trace.Event{
		At: j.env.K.Now(), Kind: trace.KindWorkerRestart,
		Job: j.Spec.ID, Host: w.host, Worker: w.idx,
		Value: float64(w.restarts),
	})
	if !j.Spec.Async && w.lastAppliedIter == j.iteration {
		return
	}
	j.env.CPUs[j.Spec.PSHost].Submit(j.Spec.Model.SerializeSec(), 1, func() {
		if j.halted() || !w.active() {
			return
		}
		j.sendModelTo(w)
	})
}

// degradeWorker permanently removes a worker that exhausted its restart
// budget; the barrier shrinks to the survivors. A job whose last worker
// is removed fails.
func (j *Job) degradeWorker(w *worker) {
	if j.halted() || w.degraded {
		return
	}
	w.degraded = true
	j.degradedCount++
	j.barrierSize--
	now := j.env.K.Now()
	j.env.emit(trace.Event{
		At: now, Kind: trace.KindWorkerDegrade,
		Job: j.Spec.ID, Host: w.host, Worker: w.idx,
		Value: float64(j.barrierSize),
	})
	if j.barrierSize <= 0 {
		j.fail(now)
		return
	}
	if !j.Spec.Async {
		if w.lastAppliedIter == j.iteration && j.applied > 0 {
			// Its gradient counted toward the open barrier; the count
			// now tracks survivors only.
			j.applied--
		}
		// The departed worker may have been the last one the barrier
		// was waiting for.
		j.maybeReleaseBarrier()
	}
}

// fail marks the job permanently failed: every worker was lost.
func (j *Job) fail(now float64) {
	j.FailedAt = now
	j.env.emit(trace.Event{
		At: now, Kind: trace.KindJobFail,
		Job: j.Spec.ID, Host: j.Spec.PSHost, Worker: -1,
		Value: now - j.StartedAt,
	})
	for _, w := range j.workers {
		if w.compute != nil {
			j.env.CPUs[w.host].Cancel(w.compute)
			w.compute = nil
		}
	}
	if j.OnFail != nil {
		j.OnFail(j)
	}
}

func (j *Job) recordProgress(now float64) {
	pe := j.Spec.ProgressEvery
	if pe <= 0 {
		return
	}
	if j.globalStep%pe == 0 || j.globalStep >= j.Spec.TargetGlobalSteps {
		j.progress = append(j.progress, ProgressPoint{At: now, Step: j.globalStep})
	}
}

// recordWait stores one worker's barrier wait sample.
func (j *Job) recordWait(iter, workerIdx int, wait float64) {
	for len(j.waits) <= iter {
		row := make([]float64, j.Spec.NumWorkers)
		for i := range row {
			row[i] = -1
		}
		j.waits = append(j.waits, row)
	}
	j.waits[iter][workerIdx] = wait
}

// BarrierStat summarizes one barrier's wait times across the job's
// workers — the unit of measurement behind the paper's Figures 3 and 6.
type BarrierStat struct {
	Iteration int
	Mean      float64
	Variance  float64 // population variance of waits across workers
	Min, Max  float64
}

// BarrierStats returns per-barrier wait statistics for every barrier at
// which all workers recorded a wait (the trailing partial barrier at job
// completion is excluded, as in the paper's methodology).
func (j *Job) BarrierStats() []BarrierStat {
	var out []BarrierStat
	for iter, row := range j.waits {
		n := 0
		sum := 0.0
		for _, v := range row {
			if v >= 0 {
				n++
				sum += v
			}
		}
		if n != j.Spec.NumWorkers {
			continue
		}
		mean := sum / float64(n)
		va := 0.0
		mn, mx := row[0], row[0]
		for _, v := range row {
			d := v - mean
			va += d * d
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		va /= float64(n)
		out = append(out, BarrierStat{
			Iteration: iter, Mean: mean, Variance: va, Min: mn, Max: mx,
		})
	}
	return out
}
