package dl

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cpusim"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/trace"
)

func TestModelZoo(t *testing.T) {
	if len(Zoo()) < 5 {
		t.Fatal("zoo too small")
	}
	for _, m := range Zoo() {
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if m.UpdateBytes() != m.Params*4 {
			t.Fatalf("%s update bytes", m.Name)
		}
	}
	m, err := ModelByName("resnet32")
	if err != nil || m.Params != 467_000 {
		t.Fatalf("resnet32 lookup: %v %+v", err, m)
	}
	if _, err := ModelByName("gpt5"); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestModelValidateErrors(t *testing.T) {
	bad := Model{Name: "x", Params: 0}
	if bad.Validate() == nil {
		t.Fatal("zero params accepted")
	}
	bad = Model{Name: "x", Params: 10, SecPerSample: -1}
	if bad.Validate() == nil {
		t.Fatal("negative timing accepted")
	}
}

func TestStepComputeSecScaling(t *testing.T) {
	m := ResNet32
	c1 := m.StepComputeSec(1)
	c4 := m.StepComputeSec(4)
	if c4 <= c1 {
		t.Fatal("compute must grow with batch")
	}
	if math.Abs((c4-c1)-3*m.SecPerSample) > 1e-12 {
		t.Fatal("linear batch scaling broken")
	}
	if m.StepComputeSec(0) != m.StepComputeSec(1) {
		t.Fatal("batch<1 must clamp to 1")
	}
}

func TestSerializeSec(t *testing.T) {
	m := ResNet32
	want := m.SerializeSecPerMB * float64(m.UpdateBytes()) / (1 << 20)
	if math.Abs(m.SerializeSec()-want) > 1e-15 {
		t.Fatal("serialize sec")
	}
}

// newEnv builds a small 4-host environment.
func newEnv(seed int64) *Env {
	k := sim.NewKernel()
	rng := sim.NewRNG(seed)
	fab := simnet.New(k, rng, simnet.Config{})
	cpus := make([]*cpusim.CPU, 4)
	for i := range cpus {
		fab.AddHost("h")
		cpus[i] = cpusim.NewCPU(k, 12)
	}
	return &Env{K: k, Fabric: fab, CPUs: cpus, RNG: rng}
}

func smallSpec(id, steps int) JobSpec {
	return JobSpec{
		ID:                id,
		Name:              "test",
		Model:             ResNet32,
		NumWorkers:        3,
		LocalBatch:        4,
		TargetGlobalSteps: steps,
		PSHost:            0,
		PSPort:            5000 + id,
		WorkerHosts:       []int{1, 2, 3},
	}
}

func TestJobValidate(t *testing.T) {
	cases := []func(*JobSpec){
		func(s *JobSpec) { s.NumWorkers = 0 },
		func(s *JobSpec) { s.WorkerHosts = []int{1} },
		func(s *JobSpec) { s.TargetGlobalSteps = 0 },
		func(s *JobSpec) { s.LocalBatch = 0 },
		func(s *JobSpec) { s.WorkerHosts = []int{0, 1, 2} }, // worker on PS host
		func(s *JobSpec) { s.Model = Model{} },
	}
	for i, mutate := range cases {
		s := smallSpec(0, 30)
		mutate(&s)
		if s.Validate() == nil {
			t.Fatalf("case %d: invalid spec accepted", i)
		}
	}
	good := smallSpec(0, 30)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSyncJobLifecycle(t *testing.T) {
	env := newEnv(1)
	j, err := NewJob(env, smallSpec(0, 30))
	if err != nil {
		t.Fatal(err)
	}
	if j.Running() || j.Done() {
		t.Fatal("job state before start")
	}
	finished := false
	j.OnFinish = func(got *Job) {
		if got != j {
			t.Error("wrong job in OnFinish")
		}
		finished = true
	}
	j.Start()
	if !j.Running() {
		t.Fatal("job not running after start")
	}
	env.K.Run(nil)
	if !finished || !j.Done() {
		t.Fatal("job never finished")
	}
	if j.GlobalStep() != 30 {
		t.Fatalf("global step %d, want 30", j.GlobalStep())
	}
	if j.JCT() <= 0 {
		t.Fatalf("JCT %v", j.JCT())
	}
	// 30 steps / 3 workers = 10 iterations; the final barrier is
	// incomplete, so expect ~9 full barrier samples.
	stats := j.BarrierStats()
	if len(stats) < 7 || len(stats) > 10 {
		t.Fatalf("barrier stats count %d", len(stats))
	}
	for _, bs := range stats {
		if bs.Mean < 0 || bs.Variance < 0 || bs.Min > bs.Max {
			t.Fatalf("bad barrier stat %+v", bs)
		}
	}
}

func TestSyncBarrierKeepsWorkersTogether(t *testing.T) {
	env := newEnv(2)
	j, _ := NewJob(env, smallSpec(0, 60))
	j.Start()
	env.K.Run(nil)
	// Synchronous training: every worker performed the same number of
	// local steps (60/3 each).
	for _, w := range j.workers {
		if w.localStep < 19 || w.localStep > 21 {
			t.Fatalf("worker local step %d, want ~20", w.localStep)
		}
	}
}

func TestAsyncJobCompletes(t *testing.T) {
	env := newEnv(3)
	spec := smallSpec(0, 60)
	spec.Async = true
	j, _ := NewJob(env, spec)
	j.Start()
	env.K.Run(nil)
	if !j.Done() || j.GlobalStep() < 60 {
		t.Fatalf("async job incomplete: %d", j.GlobalStep())
	}
}

func TestAsyncAllowsUnevenProgress(t *testing.T) {
	env := newEnv(4)
	spec := smallSpec(0, 120)
	spec.Async = true
	spec.ComputeJitterSigma = 0.5 // strong jitter -> uneven progress
	j, _ := NewJob(env, spec)
	j.Start()
	env.K.Run(nil)
	minS, maxS := j.workers[0].localStep, j.workers[0].localStep
	for _, w := range j.workers {
		if w.localStep < minS {
			minS = w.localStep
		}
		if w.localStep > maxS {
			maxS = w.localStep
		}
	}
	if maxS-minS < 2 {
		t.Fatalf("async workers suspiciously even: min %d max %d", minS, maxS)
	}
}

func TestProgressRecording(t *testing.T) {
	env := newEnv(5)
	spec := smallSpec(0, 60)
	spec.ProgressEvery = 15
	j, _ := NewJob(env, spec)
	j.Start()
	env.K.Run(nil)
	pts := j.Progress()
	if len(pts) < 4 {
		t.Fatalf("progress points %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].At < pts[i-1].At || pts[i].Step < pts[i-1].Step {
			t.Fatal("progress not monotone")
		}
	}
	if pts[len(pts)-1].Step != 60 {
		t.Fatalf("final progress step %d", pts[len(pts)-1].Step)
	}
}

func TestTraceEvents(t *testing.T) {
	env := newEnv(6)
	buf := &trace.Buffer{}
	env.Tracer = buf
	j, _ := NewJob(env, smallSpec(0, 30))
	j.Start()
	env.K.Run(nil)
	var starts, finishes, barriers int
	for _, e := range buf.Events() {
		switch e.Kind {
		case trace.KindJobStart:
			starts++
		case trace.KindJobFinish:
			finishes++
		case trace.KindBarrierRelease:
			barriers++
		}
	}
	if starts != 1 || finishes != 1 {
		t.Fatalf("starts %d finishes %d", starts, finishes)
	}
	if barriers < 7 {
		t.Fatalf("barrier releases %d", barriers)
	}
}

func TestDoubleStartPanics(t *testing.T) {
	env := newEnv(7)
	j, _ := NewJob(env, smallSpec(0, 30))
	j.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("double start accepted")
		}
	}()
	j.Start()
}

func TestTwoJobsShareCluster(t *testing.T) {
	env := newEnv(8)
	j1, _ := NewJob(env, smallSpec(0, 30))
	j2, _ := NewJob(env, smallSpec(1, 30))
	j1.Start()
	env.K.ScheduleAfter(0.1, j2.Start)
	env.K.Run(nil)
	if !j1.Done() || !j2.Done() {
		t.Fatal("concurrent jobs did not finish")
	}
	// Contention means the colocated pair is slower than a solo run.
	envSolo := newEnv(8)
	solo, _ := NewJob(envSolo, smallSpec(0, 30))
	solo.Start()
	envSolo.K.Run(nil)
	if j1.JCT() < solo.JCT()*0.9 {
		t.Fatalf("contended job faster than solo: %v vs %v", j1.JCT(), solo.JCT())
	}
}

// Property: for any target step count, the job finishes with exactly
// that global step and JCT > 0.
func TestJobStepTargetProperty(t *testing.T) {
	f := func(stepsRaw uint8, seed int64) bool {
		steps := int(stepsRaw%50) + 3
		env := newEnv(seed)
		j, err := NewJob(env, smallSpec(0, steps))
		if err != nil {
			return false
		}
		j.Start()
		env.K.MaxEvents = 5_000_000
		env.K.Run(nil)
		return j.Done() && j.GlobalStep() == steps && j.JCT() > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
