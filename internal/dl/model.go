// Package dl models distributed deep-learning jobs under the parameter
// server (PS) architecture: one logically centralized PS exchanging
// model updates and gradient updates with N remote workers, in
// synchronous (barrier per iteration) or asynchronous mode. The package
// reproduces the paper's communication pattern exactly — per iteration,
// each worker computes on a local batch, pushes a gradient update of the
// model's full parameter size to the PS, waits at the barrier, and
// receives a model update of the same size — without simulating the
// numerical training itself, which the paper's results never depend on.
package dl

import "fmt"

// Model describes a DNN's communication and computation footprint.
type Model struct {
	Name string
	// Params is the trainable parameter count; each parameter is 4
	// bytes (fp32), so one model/gradient update moves 4*Params bytes.
	Params int64
	// SecPerSample is single-thread compute seconds per training sample
	// (forward + backward) on the reference CPU.
	SecPerSample float64
	// StepOverheadSec is fixed per-local-step compute time independent
	// of batch size (graph dispatch, optimizer bookkeeping).
	StepOverheadSec float64
	// PSApplySecPerGrad is single-thread seconds the PS spends applying
	// one worker's gradient update (deserialization + optimizer step).
	PSApplySecPerGrad float64
	// SerializeSecPerMB is single-thread CPU seconds the PS spends per
	// megabyte serializing outbound model updates (the gRPC/protobuf
	// marshalling path). This cost scales with a host's PS traffic and
	// is untouched by NIC prioritization, so it bounds how much of the
	// colocation penalty TensorLights can recover.
	SerializeSecPerMB float64
}

// BytesPerParam is the size of one fp32 parameter.
const BytesPerParam = 4

// UpdateBytes returns the size of one model update or gradient update —
// the full parameter set, as in the paper's TensorFlow PS protocol.
func (m Model) UpdateBytes() int64 { return m.Params * BytesPerParam }

// Validate reports configuration errors.
func (m Model) Validate() error {
	if m.Params <= 0 {
		return fmt.Errorf("dl: model %q has no parameters", m.Name)
	}
	if m.SecPerSample < 0 || m.StepOverheadSec < 0 || m.PSApplySecPerGrad < 0 || m.SerializeSecPerMB < 0 {
		return fmt.Errorf("dl: model %q has negative timing", m.Name)
	}
	return nil
}

// The model zoo. Parameter counts are the published sizes; per-sample
// compute times are calibrated so that ResNet-32 at local batch size 4
// takes roughly the per-iteration time implied by the paper's testbed
// (thousands of seconds for 1500 iterations on oversubscribed CPUs).
var (
	// ResNet32 is the paper's workload: ResNet-32 for CIFAR-10,
	// ~0.47 M parameters → ~1.87 MB per update.
	ResNet32 = Model{
		Name:              "resnet32",
		Params:            467_000,
		SecPerSample:      0.070,
		StepOverheadSec:   0.080,
		PSApplySecPerGrad: 0.004,
		SerializeSecPerMB: 0.0025,
	}
	// ResNet56 is the deeper CIFAR variant (~0.86 M parameters).
	ResNet56 = Model{
		Name:              "resnet56",
		Params:            856_000,
		SecPerSample:      0.260,
		StepOverheadSec:   0.280,
		PSApplySecPerGrad: 0.007,
		SerializeSecPerMB: 0.0025,
	}
	// AlexNet: 61 M parameters, famously communication-heavy.
	AlexNet = Model{
		Name:              "alexnet",
		Params:            61_000_000,
		SecPerSample:      0.450,
		StepOverheadSec:   0.250,
		PSApplySecPerGrad: 0.120,
		SerializeSecPerMB: 0.0025,
	}
	// InceptionV3: 23.9 M parameters.
	InceptionV3 = Model{
		Name:              "inception3",
		Params:            23_900_000,
		SecPerSample:      1.900,
		StepOverheadSec:   0.400,
		PSApplySecPerGrad: 0.050,
		SerializeSecPerMB: 0.0025,
	}
	// ResNet50: 25.6 M parameters.
	ResNet50 = Model{
		Name:              "resnet50",
		Params:            25_600_000,
		SecPerSample:      1.500,
		StepOverheadSec:   0.350,
		PSApplySecPerGrad: 0.055,
		SerializeSecPerMB: 0.0025,
	}
	// VGG16: 138 M parameters, the heaviest updates in the zoo.
	VGG16 = Model{
		Name:              "vgg16",
		Params:            138_000_000,
		SecPerSample:      2.100,
		StepOverheadSec:   0.400,
		PSApplySecPerGrad: 0.300,
		SerializeSecPerMB: 0.0025,
	}
	// DCGAN: ~3.5 M parameters (generator + discriminator at 64x64),
	// the small-update GAN anchor of the open-world mix — light on the
	// wire, cheap per sample.
	DCGAN = Model{
		Name:              "dcgan",
		Params:            3_500_000,
		SecPerSample:      0.210,
		StepOverheadSec:   0.150,
		PSApplySecPerGrad: 0.012,
		SerializeSecPerMB: 0.0025,
	}
	// BERTBase: 110 M parameters — transformer-encoder scale, updates
	// comparable to VGG-16 but with far heavier per-sample compute.
	BERTBase = Model{
		Name:              "bert-base",
		Params:            110_000_000,
		SecPerSample:      2.800,
		StepOverheadSec:   0.450,
		PSApplySecPerGrad: 0.250,
		SerializeSecPerMB: 0.0025,
	}
	// GPT2XL: 1.5 B parameters — the GPT-sized entry (~6 GB per fp32
	// update). It exists to stress the zoo's upper end; default mixes
	// leave it out and trace-driven workloads opt in explicitly.
	GPT2XL = Model{
		Name:              "gpt2-xl",
		Params:            1_500_000_000,
		SecPerSample:      9.500,
		StepOverheadSec:   0.800,
		PSApplySecPerGrad: 1.800,
		SerializeSecPerMB: 0.0025,
	}
)

// Zoo lists the built-in models, smallest update first.
func Zoo() []Model {
	return []Model{ResNet32, ResNet56, DCGAN, InceptionV3, ResNet50,
		AlexNet, BERTBase, VGG16, GPT2XL}
}

// ModelByName looks a model up in the zoo.
func ModelByName(name string) (Model, error) {
	for _, m := range Zoo() {
		if m.Name == name {
			return m, nil
		}
	}
	return Model{}, fmt.Errorf("dl: unknown model %q", name)
}

// SerializeSec returns the PS-side single-thread CPU seconds to marshal
// one outbound model update.
func (m Model) SerializeSec() float64 {
	return m.SerializeSecPerMB * float64(m.UpdateBytes()) / (1 << 20)
}

// StepComputeSec returns single-thread compute seconds for one local
// step at the given local batch size.
func (m Model) StepComputeSec(localBatch int) float64 {
	if localBatch < 1 {
		localBatch = 1
	}
	return m.StepOverheadSec + float64(localBatch)*m.SecPerSample
}
