package policy

import (
	"math"
	"testing"
)

// creditVia pushes one sampling round through a fake probe so jobs
// accumulate the given attained bytes (each job in its own band).
func creditVia(t *testing.T, bytes map[int]uint64) *Feedback {
	t.Helper()
	k, fb, pr := newTestFeedback(FeedbackConfig{SampleIntervalSec: 1})
	byJob := map[int]int{}
	bands := map[int]uint64{}
	band := 0
	for id := 10; id <= 12; id++ { // deterministic job -> band mapping
		if v, ok := bytes[id]; ok {
			fb.JobArrived(id)
			byJob[id] = band
			bands[band] = v
			band++
		}
	}
	fb.SetAssignments(0, byJob)
	pr.bands[0] = bands
	k.RunUntil(1)
	return fb
}

func TestLASRanksLeastAttainedFirst(t *testing.T) {
	fb := creditVia(t, map[int]uint64{10: 5000, 11: 100, 12: 2000})
	p, _ := New("TLs-LAS", Params{Bands: 3, IntervalSec: 5})
	jobs := jobsFixture()
	bands := p.Rank(0, jobs, fb)
	if !eqInts(ids(jobs), []int{11, 12, 10}) {
		t.Fatalf("LAS order %v, want [11 12 10]", ids(jobs))
	}
	if !eqInts(bands, []int{0, 1, 2}) {
		t.Fatalf("LAS bands %v", bands)
	}
}

func TestLASNilFeedbackFallsBackToArrival(t *testing.T) {
	p, _ := New("TLs-LAS", Params{Bands: 3})
	jobs := jobsFixture()
	p.Rank(0, jobs, nil)
	// All attained values are zero, so ties break by arrival sequence.
	if !eqInts(ids(jobs), []int{11, 12, 10}) {
		t.Fatalf("LAS nil-feedback order %v", ids(jobs))
	}
}

func TestSRSFRanksShortestRemainingFirst(t *testing.T) {
	p, _ := New("TLs-SRSF", Params{Bands: 3, IntervalSec: 5})
	jobs := []Job{
		{ID: 10, ArrivalSeq: 0, UpdateBytes: 100, TargetSteps: 100, Progress: 90}, // 10*100 = 1000 left
		{ID: 11, ArrivalSeq: 1, UpdateBytes: 50, TargetSteps: 100, Progress: 0},   // 100*50 = 5000 left
		{ID: 12, ArrivalSeq: 2, UpdateBytes: 10, TargetSteps: 0},                  // undeclared: last
	}
	p.Rank(0, jobs, nil)
	if !eqInts(ids(jobs), []int{10, 11, 12}) {
		t.Fatalf("SRSF order %v, want [10 11 12]", ids(jobs))
	}
}

func TestSRSFUsesObservedTelemetry(t *testing.T) {
	if !math.IsInf(remainingService(Job{ID: 1, TargetSteps: 0}, nil), 1) {
		t.Fatal("undeclared target should be +Inf remaining")
	}
	// Feedback-observed progress and bytes/iteration override the
	// static Job view: job 10 attained 5000 bytes over its (feedback)
	// progress, so its per-iteration cost is measured, not declared.
	fb := creditVia(t, map[int]uint64{10: 5000})
	fb.OnProgress(10, 50)
	j := Job{ID: 10, ArrivalSeq: 0, UpdateBytes: 1, TargetSteps: 60, Progress: 10}
	got := remainingService(j, fb)
	want := 10.0 * 100.0 // (60-50 remaining) * (5000/50 bytes per iter)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("remainingService = %g, want %g", got, want)
	}
	// Completed jobs clamp at zero rather than going negative.
	fb.OnProgress(10, 60)
	if got := remainingService(j, fb); got != 0 {
		t.Fatalf("finished job remaining = %g, want 0", got)
	}
}

func TestInterleaveFallsBackToRotation(t *testing.T) {
	p, _ := New("TLs-Interleave", Params{Bands: 3, IntervalSec: 5})
	il := p.(Rotator)
	jobs := jobsFixture()
	// No feedback: behaves exactly like TLs-RR.
	if got := p.Rank(0, jobs, nil); !eqInts(got, []int{0, 1, 2}) {
		t.Fatalf("fallback rotation 0: %v", got)
	}
	il.Advance(5)
	if got := p.Rank(0, jobs, nil); !eqInts(got, []int{1, 2, 0}) {
		t.Fatalf("fallback rotation 1: %v", got)
	}
}

func TestInterleaveRanksByPhase(t *testing.T) {
	k, fb, _ := newTestFeedback(FeedbackConfig{SampleIntervalSec: 100})
	for id := 10; id <= 12; id++ {
		fb.JobArrived(id)
	}
	// Establish periods: job 10 iterates every 10 s (last at t=20), job
	// 11 every 12 s (last at t=24); job 12 never reports progress.
	k.Schedule(10, func() { fb.OnProgress(10, 1) })
	k.Schedule(20, func() { fb.OnProgress(10, 2) })
	k.Schedule(12, func() { fb.OnProgress(11, 1) })
	k.Schedule(24, func() { fb.OnProgress(11, 2) })
	k.RunUntil(27)
	// At t=27: job 10 phase = 7/10 = 0.7, job 11 phase = 3/12 = 0.25.
	p, _ := New("TLs-Interleave", Params{Bands: 3, IntervalSec: 5})
	jobs := jobsFixture()
	bands := p.Rank(0, jobs, fb)
	// Highest phase (closest to its next burst) first; the job with no
	// period estimate ranks last.
	if !eqInts(ids(jobs), []int{10, 11, 12}) {
		t.Fatalf("interleave order %v, want [10 11 12]", ids(jobs))
	}
	if !eqInts(bands, []int{0, 1, 2}) {
		t.Fatalf("interleave bands %v", bands)
	}
}
