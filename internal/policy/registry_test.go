package policy

import (
	"strings"
	"testing"
)

func TestRegistryKnownAndAliases(t *testing.T) {
	cases := []struct {
		name string
		want string // canonical Name() of the built policy
	}{
		{"FIFO", "FIFO"},
		{"fifo", "FIFO"},
		{"TLs-One", "TLs-One"},
		{"tls-one", "TLs-One"},
		{"one", "TLs-One"},
		{"tls_rr", "TLs-RR"},
		{"rr", "TLs-RR"},
		{"TLs-LAS", "TLs-LAS"},
		{"las", "TLs-LAS"},
		{"srsf", "TLs-SRSF"},
		{"interleave", "TLs-Interleave"},
		{"static-rate", "StaticRate"},
		{"staticrate", "StaticRate"},
		{"lpf", "TLs-LPF"},
	}
	for _, c := range cases {
		if !Known(c.name) {
			t.Errorf("Known(%q) = false", c.name)
			continue
		}
		p, err := New(c.name, Params{Bands: 3})
		if err != nil {
			t.Errorf("New(%q): %v", c.name, err)
			continue
		}
		if p.Name() != c.want {
			t.Errorf("New(%q).Name() = %q, want %q", c.name, p.Name(), c.want)
		}
	}
}

func TestRegistryUnknown(t *testing.T) {
	if Known("no-such-policy") {
		t.Fatal("Known accepted a bogus name")
	}
	_, err := New("no-such-policy", Params{})
	if err == nil {
		t.Fatal("New accepted a bogus name")
	}
	if !strings.Contains(err.Error(), "TLs-RR") {
		t.Fatalf("error should list registered policies, got: %v", err)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	// "tls-rr" normalizes to the already-registered "TLs-RR".
	Register("tls_rr", func(Params) Policy { return fifo{} })
}

func TestRegistryNamesSorted(t *testing.T) {
	names := Names()
	if len(names) < 8 {
		t.Fatalf("expected at least 8 registered policies, got %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names not sorted: %v", names)
		}
	}
	for _, want := range []string{"FIFO", "TLs-One", "TLs-RR", "TLs-LPF",
		"StaticRate", "TLs-LAS", "TLs-SRSF", "TLs-Interleave"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("Names() missing %q: %v", want, names)
		}
	}
}

func TestMarkerInterfaces(t *testing.T) {
	mk := func(name string) Policy {
		p, err := New(name, Params{Bands: 6, IntervalSec: 20})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	if p := mk("FIFO"); !IsNoOp(p) || NeedsFeedback(p) || WantsStaticRate(p) || Interval(p) != 0 {
		t.Fatal("FIFO markers wrong")
	}
	if p := mk("TLs-One"); IsNoOp(p) || NeedsFeedback(p) || Interval(p) != 0 {
		t.Fatal("TLs-One markers wrong")
	}
	if p := mk("TLs-RR"); NeedsFeedback(p) || Interval(p) != 20 {
		t.Fatal("TLs-RR markers wrong")
	}
	if p := mk("StaticRate"); !WantsStaticRate(p) || NeedsFeedback(p) {
		t.Fatal("StaticRate markers wrong")
	}
	for _, name := range []string{"TLs-LAS", "TLs-SRSF", "TLs-Interleave"} {
		p := mk(name)
		if !NeedsFeedback(p) {
			t.Fatalf("%s should be FeedbackDriven", name)
		}
		if Interval(p) != 20 {
			t.Fatalf("%s should rotate every IntervalSec", name)
		}
		if IsNoOp(p) || WantsStaticRate(p) {
			t.Fatalf("%s marker overlap", name)
		}
	}
}
