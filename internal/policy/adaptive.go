package policy

import "math"

// Adaptive policies beyond the paper, driven by the Feedback
// collector's telemetry. All three re-rank every IntervalSec like
// TLs-RR, but replace the blind rotation with a measured signal.
//
// Provenance: TLs-LAS follows Tiresias' least-attained-service
// discipline with aging (Gu et al., NSDI'19); TLs-SRSF is Tiresias'
// shortest-remaining-service-first variant using the declared job
// length; TLs-Interleave adapts CASSINI's insight (Rajasekaran et al.,
// NSDI'24) that colocated jobs' communication phases should be
// offset so their bursts interleave instead of collide.

func init() {
	Register("TLs-LAS", func(p Params) Policy { return &las{p: p} })
	Register("TLs-SRSF", func(p Params) Policy { return &srsf{p: p} })
	Register("TLs-Interleave", func(p Params) Policy { return &interleave{p: p} })
}

// las ranks least-attained-service first: the job that has moved the
// fewest (aged) bytes gets the green band. Aging lives in the Feedback
// collector, so a long job whose service is all in the past competes
// like a young job — Tiresias' starvation fix.
type las struct{ p Params }

func (l *las) Name() string { return "TLs-LAS" }

func (l *las) FeedbackDriven() {}

func (l *las) RotateInterval() float64 { return l.p.IntervalSec }

func (l *las) Advance(float64) {}

func (l *las) Rank(host int, jobs []Job, fb *Feedback) []int {
	attained := make(map[int]float64, len(jobs))
	for _, j := range jobs {
		if fb != nil {
			attained[j.ID] = fb.AttainedService(j.ID)
		}
	}
	sortBy(jobs, func(a, b Job) bool {
		if attained[a.ID] != attained[b.ID] {
			return attained[a.ID] < attained[b.ID]
		}
		return a.ArrivalSeq < b.ArrivalSeq
	})
	return SpreadBands(len(jobs), l.p.Bands, 0)
}

// srsf ranks shortest-remaining-service first: remaining iterations
// (declared target minus observed progress) times observed bytes per
// iteration. Jobs without a declared target rank last; jobs without
// observed service fall back to their update size as the per-iteration
// cost. Like SRPT, it trades tail fairness for completions — small
// remaining work exits the contention set fastest.
type srsf struct{ p Params }

func (s *srsf) Name() string { return "TLs-SRSF" }

func (s *srsf) FeedbackDriven() {}

func (s *srsf) RotateInterval() float64 { return s.p.IntervalSec }

func (s *srsf) Advance(float64) {}

func (s *srsf) Rank(host int, jobs []Job, fb *Feedback) []int {
	remaining := make(map[int]float64, len(jobs))
	for _, j := range jobs {
		remaining[j.ID] = remainingService(j, fb)
	}
	sortBy(jobs, func(a, b Job) bool {
		if remaining[a.ID] != remaining[b.ID] {
			return remaining[a.ID] < remaining[b.ID]
		}
		return a.ArrivalSeq < b.ArrivalSeq
	})
	return SpreadBands(len(jobs), s.p.Bands, 0)
}

// remainingService estimates a job's outstanding network demand in
// bytes; +Inf when the job declared no target.
func remainingService(j Job, fb *Feedback) float64 {
	if j.TargetSteps <= 0 {
		return math.Inf(1)
	}
	progress := j.Progress
	perIter := float64(j.UpdateBytes)
	if fb != nil {
		if p := fb.Progress(j.ID); p > progress {
			progress = p
		}
		if bpi := fb.BytesPerIteration(j.ID); bpi > 0 {
			perIter = bpi
		}
	}
	left := j.TargetSteps - progress
	if left < 0 {
		left = 0
	}
	return float64(left) * perIter
}

// interleave offsets colocated jobs' priority so their communication
// phases interleave: the job furthest into its compute phase (about to
// emit its next burst) gets the green band, so bursts are served in
// the order they will arrive instead of colliding. Until period
// estimates exist it degenerates to round-robin rotation, which also
// breaks symmetry when all phases are identical.
type interleave struct {
	p        Params
	rotation int
}

func (il *interleave) Name() string { return "TLs-Interleave" }

func (il *interleave) FeedbackDriven() {}

func (il *interleave) RotateInterval() float64 { return il.p.IntervalSec }

func (il *interleave) Advance(float64) { il.rotation++ }

func (il *interleave) Rank(host int, jobs []Job, fb *Feedback) []int {
	phase := make(map[int]float64, len(jobs))
	known := 0
	for _, j := range jobs {
		if fb != nil {
			if ph, ok := fb.Phase(j.ID); ok {
				phase[j.ID] = ph
				known++
				continue
			}
		}
		phase[j.ID] = -1 // unknown: rank after every measured job
	}
	if known == 0 {
		SortByArrival(jobs)
		return SpreadBands(len(jobs), il.p.Bands, il.rotation)
	}
	sortBy(jobs, func(a, b Job) bool {
		if phase[a.ID] != phase[b.ID] {
			return phase[a.ID] > phase[b.ID]
		}
		return a.ArrivalSeq < b.ArrivalSeq
	})
	return SpreadBands(len(jobs), il.p.Bands, 0)
}
