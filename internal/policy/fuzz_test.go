package policy

import (
	"testing"

	"repro/internal/sim"
)

// FuzzPolicyRank feeds random job sets (and, for feedback-driven
// policies, random telemetry) to every registered policy and checks the
// Rank contract: the jobs slice stays a permutation of the input, the
// returned bands are one per job, and every band is a valid index. A
// policy that drops a job, invents one, or emits an out-of-range band
// would crash the controller's tc synthesis.
func FuzzPolicyRank(f *testing.F) {
	f.Add(uint8(3), uint8(6), int64(7), []byte{1, 2, 3, 4})
	f.Add(uint8(1), uint8(1), int64(1), []byte{0})
	f.Add(uint8(21), uint8(6), int64(42), []byte{9, 9, 9, 200, 17, 0, 255})
	f.Add(uint8(0), uint8(3), int64(3), []byte{})
	f.Add(uint8(8), uint8(2), int64(-5), []byte{128, 64, 32, 16, 8, 4, 2, 1})

	f.Fuzz(func(t *testing.T, njobs, bands uint8, seed int64, raw []byte) {
		n := int(njobs) % 32
		nb := 1 + int(bands)%8
		byteAt := func(i int) int64 {
			if len(raw) == 0 {
				return 0
			}
			return int64(raw[i%len(raw)])
		}

		// Random-ish but deterministic job set: arrival sequence is a
		// permutation so ties behave like production.
		jobs := make([]Job, n)
		for i := range jobs {
			jobs[i] = Job{
				ID:          100 + i,
				UpdateBytes: 1 + byteAt(i)*1000,
				TargetSteps: int(byteAt(i+1)) % 300,
				Progress:    int(byteAt(i+2)) % 300,
			}
		}
		rng := sim.NewRNG(seed)
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		rng.Stream("perm").Shuffle(n, func(i, k int) { perm[i], perm[k] = perm[k], perm[i] })
		for i := range jobs {
			jobs[i].ArrivalSeq = perm[i]
		}

		// Telemetry: attained service via a fake probe plus progress
		// reports at fuzzed times, one sampling round.
		k := sim.NewKernel()
		fb := NewFeedback(k, FeedbackConfig{SampleIntervalSec: 1})
		pr := &fakeProbe{bands: map[int]map[int]uint64{0: {}}, backlog: map[int]int64{}}
		fb.Probe = pr
		byJob := map[int]int{}
		for i, j := range jobs {
			fb.JobArrived(j.ID)
			band := i % nb
			byJob[j.ID] = band
			pr.bands[0][band] += uint64(1 + byteAt(i)*37)
			if byteAt(i)%2 == 0 {
				fb.OnProgress(j.ID, 1+int(byteAt(i+3))%50)
			}
		}
		fb.SetAssignments(0, byJob)
		if n > 0 {
			k.RunUntil(1)
		}

		for _, name := range Names() {
			pol, err := New(name, Params{
				Bands:       nb,
				IntervalSec: 5,
				Order:       Order(int(byteAt(0)) % 3),
				RNG:         sim.NewRNG(seed).Stream("tensorlights"),
			})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			in := make([]Job, len(jobs))
			copy(in, jobs)
			var arg *Feedback
			if NeedsFeedback(pol) {
				arg = fb
			}
			got := pol.Rank(0, in, arg)

			if IsNoOp(pol) {
				if got != nil {
					t.Fatalf("%s: no-op policy returned bands %v", name, got)
				}
				continue
			}
			if len(got) != len(in) {
				t.Fatalf("%s: %d bands for %d jobs", name, len(got), len(in))
			}
			limit := nb
			if WantsStaticRate(pol) {
				limit = n // per-job class indices
			}
			for i, b := range got {
				if b < 0 || b >= limit {
					t.Fatalf("%s: band[%d] = %d out of [0,%d)", name, i, b, limit)
				}
			}
			// The reordered slice must be a permutation of the input.
			seen := map[int]bool{}
			for _, j := range in {
				if seen[j.ID] {
					t.Fatalf("%s: duplicate job %d after Rank", name, j.ID)
				}
				seen[j.ID] = true
			}
			for _, j := range jobs {
				if !seen[j.ID] {
					t.Fatalf("%s: job %d lost by Rank", name, j.ID)
				}
			}
			// Advance rotating policies so the next Rank exercises a
			// different offset too.
			Advance(pol, 5)
			copy(in, jobs)
			if got2 := pol.Rank(0, in, arg); len(got2) != len(in) {
				t.Fatalf("%s: post-Advance rank returned %d bands", name, len(got2))
			}
		}
	})
}
