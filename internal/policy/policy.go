// Package policy is TensorLights' pluggable priority-assignment engine.
// A Policy ranks the jobs contending on one host's egress into priority
// bands; the core controller delegates every ranking and rotation
// decision here and keeps only the actuation machinery (tc command
// synthesis, retry, reconcile). Policies are registered by name, so new
// scheduling disciplines land as plain registry entries instead of
// surgery on the controller.
//
// Beyond the paper's static assignments (TLs-One) and blind rotation
// (TLs-RR), the package ships telemetry-driven policies fed by a
// Feedback collector: TLs-LAS (least-attained-service first with
// Tiresias-style aging), TLs-SRSF (shortest-remaining-service first,
// using declared target steps and observed bytes/iteration), and
// TLs-Interleave (CASSINI-inspired phase interleaving of the jobs'
// communication bursts).
package policy

import (
	"sort"

	"repro/internal/sim"
)

// Order selects how static policies rank contending jobs into bands.
// Values mirror core.Order (the paper deliberately leaves this choice
// open, §IV-B).
type Order int

const (
	// OrderArrival ranks by job arrival sequence.
	OrderArrival Order = iota
	// OrderRandom shuffles ranks once per (re)configuration.
	OrderRandom
	// OrderSmallestUpdate gives smaller model updates higher priority.
	OrderSmallestUpdate
)

// Job is the policy-visible view of one contending job — everything
// observable from outside the application, as the paper requires.
type Job struct {
	ID          int
	ArrivalSeq  int   // global arrival order (dense, 0-based)
	UpdateBytes int64 // bytes of one model-update transfer
	TargetSteps int   // declared training length in iterations; 0 = undeclared
	Progress    int   // completed iterations reported so far
}

// Params parameterizes policy construction. The controller fills it
// from its Config so registry factories see one uniform shape.
type Params struct {
	// Bands is the number of priority bands ranks spread across.
	Bands int
	// IntervalSec is the re-ranking period for rotating policies.
	IntervalSec float64
	// Order is the static ranking order (One/RR/StaticRate).
	Order Order
	// RNG is the seeded stream used by stochastic orders.
	RNG *sim.RNG
	// TimeAnchored makes rotating policies derive their phase from the
	// simulated time Advance is called at (rotation = now/IntervalSec)
	// instead of counting Advance calls. With grid-aligned controller
	// timers this makes the phase a pure function of time, so
	// controllers that started observing jobs at different moments — the
	// per-shard controllers of a sharded run — still agree on every
	// rotation offset.
	TimeAnchored bool
}

// Policy ranks a host's contending jobs into priority bands.
//
// Rank may reorder jobs in place — the resulting slice order is the
// rank order, which the controller also uses as the tc filter
// installation order — and returns bands[i] ∈ [0, Params.Bands) for
// jobs[i]. The controller clamps bands to the host's effective band
// count (min(Bands, len(jobs))), mirroring the paper's limited-band
// deployment. fb is nil unless the policy declared FeedbackDriven.
type Policy interface {
	Name() string
	Rank(host int, jobs []Job, fb *Feedback) []int
}

// Rotator is implemented by policies that re-rank on a timer. The
// controller calls Advance once per period before re-ranking hosts.
type Rotator interface {
	Policy
	// RotateInterval returns the period in seconds; <= 0 disables the
	// timer.
	RotateInterval() float64
	// Advance moves the policy to its next phase (e.g. the round-robin
	// offset).
	Advance(now float64)
}

// NoOp is implemented by policies under which the controller leaves
// every NIC on its default FIFO qdisc (the paper's baseline).
type NoOp interface {
	Policy
	NoOp()
}

// StaticRater is implemented by policies realized as static per-job
// rate shares (rate = ceil = link/N) instead of priority bands — the
// paper's §VII non-work-conserving alternative. Rank's bands are then
// per-job class indices.
type StaticRater interface {
	Policy
	StaticRate()
}

// FeedbackDriven is implemented by policies that need a Feedback
// collector; the cluster wires one up at launch and the controller
// passes it to Rank.
type FeedbackDriven interface {
	Policy
	FeedbackDriven()
}

// Interval returns the policy's rotation period, or 0 for non-rotating
// policies.
func Interval(p Policy) float64 {
	if r, ok := p.(Rotator); ok {
		return r.RotateInterval()
	}
	return 0
}

// Advance advances a rotating policy; a no-op otherwise.
func Advance(p Policy, now float64) {
	if r, ok := p.(Rotator); ok {
		r.Advance(now)
	}
}

// IsNoOp reports whether the policy leaves NICs unmanaged.
func IsNoOp(p Policy) bool {
	_, ok := p.(NoOp)
	return ok
}

// WantsStaticRate reports whether the policy is realized as static
// rate shares rather than priority bands.
func WantsStaticRate(p Policy) bool {
	_, ok := p.(StaticRater)
	return ok
}

// NeedsFeedback reports whether the policy requires a Feedback
// collector.
func NeedsFeedback(p Policy) bool {
	_, ok := p.(FeedbackDriven)
	return ok
}

// SortByArrival orders jobs by arrival sequence — the deterministic
// base order every policy starts from.
func SortByArrival(jobs []Job) {
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].ArrivalSeq < jobs[k].ArrivalSeq })
}

// orderJobs applies the configured static Order in place, reproducing
// the controller's historical ranking exactly (including the RNG draw
// sequence for OrderRandom).
func orderJobs(jobs []Job, o Order, rng *sim.RNG) {
	switch o {
	case OrderRandom:
		SortByArrival(jobs)
		if rng != nil {
			rng.Shuffle(len(jobs), func(i, k int) { jobs[i], jobs[k] = jobs[k], jobs[i] })
		}
	case OrderSmallestUpdate:
		sort.Slice(jobs, func(i, k int) bool {
			if jobs[i].UpdateBytes != jobs[k].UpdateBytes {
				return jobs[i].UpdateBytes < jobs[k].UpdateBytes
			}
			return jobs[i].ArrivalSeq < jobs[k].ArrivalSeq
		})
	default: // OrderArrival
		SortByArrival(jobs)
	}
}

// sortBy orders jobs by the less comparator. Comparators must break
// ties on ArrivalSeq so the sort is deterministic without stability.
func sortBy(jobs []Job, less func(a, b Job) bool) {
	sort.Slice(jobs, func(i, k int) bool { return less(jobs[i], jobs[k]) })
}

// SpreadBands maps n rank positions onto bands priority bands with an
// optional rotation offset: position i gets band ((i+rot)%n)*bands/n.
// With more jobs than bands, consecutive ranks share bands in
// contiguous groups, as the paper's limited-band deployment does.
func SpreadBands(n, bands, rot int) []int {
	out := make([]int, n)
	for i := range out {
		r := i
		if rot != 0 {
			r = (i + rot) % n
		}
		out[i] = r * bands / n
	}
	return out
}
