package policy

import (
	"math"
	"testing"

	"repro/internal/sim"
)

// fakeProbe is a scriptable Probe: tests mutate bands/backlog between
// sampling rounds to model dequeue progress and qdisc reinstalls.
type fakeProbe struct {
	bands   map[int]map[int]uint64 // host -> band -> cumulative bytes
	backlog map[int]int64
}

func (p *fakeProbe) BandDequeuedBytes(host int) map[int]uint64 {
	src := p.bands[host]
	if src == nil {
		return nil
	}
	cp := make(map[int]uint64, len(src))
	for b, v := range src {
		cp[b] = v
	}
	return cp
}

func (p *fakeProbe) BacklogBytes(host int) int64 { return p.backlog[host] }

func newTestFeedback(cfg FeedbackConfig) (*sim.Kernel, *Feedback, *fakeProbe) {
	k := sim.NewKernel()
	fb := NewFeedback(k, cfg)
	pr := &fakeProbe{bands: map[int]map[int]uint64{}, backlog: map[int]int64{}}
	fb.Probe = pr
	return k, fb, pr
}

func TestFeedbackAttributesDeltasPerBand(t *testing.T) {
	k, fb, pr := newTestFeedback(FeedbackConfig{SampleIntervalSec: 1})
	fb.JobArrived(1)
	fb.JobArrived(2)
	fb.SetAssignments(0, map[int]int{1: 0, 2: 1})
	pr.bands[0] = map[int]uint64{0: 1000, 1: 500}
	pr.backlog[0] = 77

	k.RunUntil(1) // first sample: full cumulative values
	if got := fb.AttainedBytes(1); got != 1000 {
		t.Fatalf("job 1 attained %d, want 1000", got)
	}
	if got := fb.AttainedBytes(2); got != 500 {
		t.Fatalf("job 2 attained %d, want 500", got)
	}

	pr.bands[0] = map[int]uint64{0: 1600, 1: 900}
	k.RunUntil(2) // second sample: deltas only
	if got := fb.AttainedBytes(1); got != 1600 {
		t.Fatalf("job 1 attained %d after delta, want 1600", got)
	}
	if got := fb.AttainedBytes(2); got != 900 {
		t.Fatalf("job 2 attained %d after delta, want 900", got)
	}
	if fb.Samples() != 2 {
		t.Fatalf("samples = %d, want 2", fb.Samples())
	}
	snaps := fb.Snapshots(1)
	if len(snaps) != 2 || snaps[1].BacklogBytes != 77 {
		t.Fatalf("snapshots wrong: %+v", snaps)
	}
}

func TestFeedbackSplitsSharedBandEvenly(t *testing.T) {
	k, fb, pr := newTestFeedback(FeedbackConfig{SampleIntervalSec: 1})
	fb.JobArrived(1)
	fb.JobArrived(2)
	fb.SetAssignments(0, map[int]int{1: 0, 2: 0}) // both share band 0
	pr.bands[0] = map[int]uint64{0: 1000}
	k.RunUntil(1)
	if a, b := fb.AttainedBytes(1), fb.AttainedBytes(2); a != 500 || b != 500 {
		t.Fatalf("shared band split %d/%d, want 500/500", a, b)
	}
}

func TestFeedbackCounterResetTreatedAsFresh(t *testing.T) {
	k, fb, pr := newTestFeedback(FeedbackConfig{SampleIntervalSec: 1})
	fb.JobArrived(1)
	fb.SetAssignments(0, map[int]int{1: 0})
	pr.bands[0] = map[int]uint64{0: 1000}
	k.RunUntil(1)
	// Qdisc reinstalled: cumulative counter went backwards. The 300
	// bytes are everything dequeued since the reinstall.
	pr.bands[0] = map[int]uint64{0: 300}
	k.RunUntil(2)
	if got := fb.AttainedBytes(1); got != 1300 {
		t.Fatalf("attained %d after counter reset, want 1300", got)
	}
}

func TestFeedbackDepartureDropsStateAndStopsSampling(t *testing.T) {
	k, fb, pr := newTestFeedback(FeedbackConfig{SampleIntervalSec: 1})
	fb.JobArrived(1)
	fb.JobArrived(2)
	fb.SetAssignments(0, map[int]int{1: 0, 2: 1})
	pr.bands[0] = map[int]uint64{0: 100, 1: 200}
	k.RunUntil(1)

	fb.JobDeparted(1) // finish or crash: telemetry must not leak
	if fb.Tracked(1) || fb.AttainedBytes(1) != 0 || fb.Snapshots(1) != nil {
		t.Fatal("departed job still has telemetry")
	}
	// The survivor keeps accruing; the departed job's band no longer
	// attributes to anyone.
	pr.bands[0] = map[int]uint64{0: 900, 1: 500}
	k.RunUntil(2)
	if got := fb.AttainedBytes(2); got != 500 {
		t.Fatalf("survivor attained %d, want 500", got)
	}

	fb.JobDeparted(2)
	n := fb.Samples()
	k.RunUntil(10)
	if fb.Samples() != n {
		t.Fatal("sampling loop kept running with no jobs")
	}
	if k.Pending() != 0 {
		t.Fatalf("%d events still pending after last departure", k.Pending())
	}

	// A new arrival re-arms the loop.
	fb.JobArrived(3)
	fb.SetAssignments(0, map[int]int{3: 0})
	k.RunUntil(11)
	if fb.Samples() != n+1 {
		t.Fatal("sampling loop did not re-arm on re-arrival")
	}
}

func TestFeedbackClearHostResetsBaseline(t *testing.T) {
	k, fb, pr := newTestFeedback(FeedbackConfig{SampleIntervalSec: 1})
	fb.JobArrived(1)
	fb.SetAssignments(0, map[int]int{1: 0})
	pr.bands[0] = map[int]uint64{0: 1000}
	k.RunUntil(1)
	// Host's qdisc removed (e.g. job count dropped below 2) and later
	// reinstalled with counters restarted from zero.
	fb.ClearHost(0)
	fb.SetAssignments(0, map[int]int{1: 0})
	pr.bands[0] = map[int]uint64{0: 250}
	k.RunUntil(2)
	if got := fb.AttainedBytes(1); got != 1250 {
		t.Fatalf("attained %d after clear+reinstall, want 1250", got)
	}
}

func TestFeedbackProgressPeriodAndPhase(t *testing.T) {
	k, fb, _ := newTestFeedback(FeedbackConfig{SampleIntervalSec: 100})
	fb.JobArrived(1)
	k.Schedule(10, func() { fb.OnProgress(1, 1) })
	k.Schedule(20, func() { fb.OnProgress(1, 2) })
	k.RunUntil(25)
	if got := fb.Progress(1); got != 2 {
		t.Fatalf("progress %d, want 2", got)
	}
	ph, ok := fb.Phase(1)
	if !ok {
		t.Fatal("phase unknown after two iterations")
	}
	// Period EWMA is 10 s and the last iteration finished at t=20, so at
	// t=25 the job is halfway through its next iteration.
	if math.Abs(ph-0.5) > 1e-9 {
		t.Fatalf("phase %.4f, want 0.5", ph)
	}
	if _, ok := fb.Phase(99); ok {
		t.Fatal("unknown job reported a phase")
	}
}

func TestFeedbackSnapshotRingBounded(t *testing.T) {
	k, fb, pr := newTestFeedback(FeedbackConfig{SampleIntervalSec: 1, RingSize: 4})
	fb.JobArrived(1)
	fb.SetAssignments(0, map[int]int{1: 0})
	pr.bands[0] = map[int]uint64{0: 10}
	k.RunUntil(10)
	snaps := fb.Snapshots(1)
	if len(snaps) != 4 {
		t.Fatalf("ring holds %d snapshots, want 4", len(snaps))
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i].At <= snaps[i-1].At {
			t.Fatalf("snapshots not oldest-first: %+v", snaps)
		}
	}
	if snaps[len(snaps)-1].At != 10 {
		t.Fatalf("newest snapshot at %.0f, want 10", snaps[len(snaps)-1].At)
	}
}

// TestLASAgingMonotonic is the aging property test: with no new
// service, a job's attained service never increases as time passes, and
// decays by exactly exp(-dt/tau) over any interval.
func TestLASAgingMonotonic(t *testing.T) {
	const tau = 50.0
	k, fb, pr := newTestFeedback(FeedbackConfig{SampleIntervalSec: 1, AgingTauSec: tau})
	fb.JobArrived(1)
	fb.SetAssignments(0, map[int]int{1: 0})
	pr.bands[0] = map[int]uint64{0: 1 << 20}
	k.RunUntil(1)
	// Stop all service; only decay remains. Advance the clock through a
	// seeded pseudo-random schedule of observation points.
	fb.ClearHost(0)
	rng := sim.NewRNG(99).Stream("aging")
	now := 1.0
	prev := fb.AttainedService(1)
	if prev <= 0 {
		t.Fatal("no attained service credited")
	}
	for i := 0; i < 200; i++ {
		dt := 0.1 + 10*rng.Jitter(1)
		if dt < 0.1 {
			dt = 0.1
		}
		now += dt
		k.RunUntil(now)
		got := fb.AttainedService(1)
		if got > prev {
			t.Fatalf("step %d: attained service rose %.6g -> %.6g with no new service", i, prev, got)
		}
		want := prev * math.Exp(-dt/tau)
		if math.Abs(got-want) > 1e-6*prev+1e-12 {
			t.Fatalf("step %d: decay %.9g, want %.9g (dt=%.3f)", i, got, want, dt)
		}
		prev = got
	}
	// After 200 steps averaging ~5 s each the service is essentially
	// fully aged out, but never negative.
	if prev < 0 {
		t.Fatal("attained service went negative")
	}
}
