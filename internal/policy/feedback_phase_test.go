package policy

import (
	"math"
	"testing"

	"repro/internal/sim"
)

// TestFeedbackPhaseEstimateConverges drives the collector with a
// synthetic periodic-burst job — iteration k completes at
// offset + k*period, with deterministic per-iteration jitter — and
// checks that the derived phase signals the cluster scheduler consumes
// (Period, LastProgressAt, Phase) converge to the true period and
// burst offset within tolerance.
func TestFeedbackPhaseEstimateConverges(t *testing.T) {
	const (
		period = 3.0
		offset = 0.4 // first burst lands at t=0.4
		bursts = 12
	)
	// ±50ms of deterministic jitter: real iteration times wobble, and
	// the EWMA must smooth through it rather than track it.
	jitter := []float64{0.05, -0.03, 0.02, -0.05, 0.04, -0.01}

	k := sim.NewKernel()
	fb := NewFeedback(k, FeedbackConfig{SampleIntervalSec: 1})
	fb.JobArrived(7)

	var lastBurstAt float64
	for i := 1; i <= bursts; i++ {
		i := i
		at := offset + float64(i-1)*period + jitter[i%len(jitter)]
		lastBurstAt = at
		k.Post(at, func() { fb.OnProgress(7, i) })
	}
	k.RunUntil(lastBurstAt)

	p, ok := fb.Period(7)
	if !ok {
		t.Fatal("no period estimate after 12 bursts")
	}
	if math.Abs(p-period) > 0.05*period {
		t.Fatalf("period estimate %.4fs, want %.1fs +/- 5%%", p, period)
	}
	anchor, ok := fb.LastProgressAt(7)
	if !ok || anchor != lastBurstAt {
		t.Fatalf("burst anchor = %.4f (ok=%v), want the last burst at %.4f", anchor, ok, lastBurstAt)
	}
	// The predicted next burst (anchor + period estimate) must land
	// within jitter-scale error of the true one.
	next := offset + float64(bursts)*period
	if got := anchor + p; math.Abs(got-next) > 0.2 {
		t.Fatalf("predicted next burst at %.3f, true one at %.3f", got, next)
	}

	// Mid-iteration the phase fraction reads ~0.5.
	k.RunUntil(lastBurstAt + period/2)
	if frac, ok := fb.Phase(7); !ok || math.Abs(frac-0.5) > 0.1 {
		t.Fatalf("mid-iteration phase = %.3f (ok=%v), want ~0.5", frac, ok)
	}

	// Progress reported at an unchanged iteration count must not
	// corrupt the estimate (barrier retries re-report iterations).
	fb.OnProgress(7, bursts)
	if p2, _ := fb.Period(7); p2 != p {
		t.Fatalf("duplicate progress report moved the period: %.4f -> %.4f", p, p2)
	}
}

// TestFeedbackPhaseTracksPeriodChange shifts the synthetic job to a
// faster cadence mid-run; the EWMA (0.7 retention) should re-converge
// within ~10 iterations.
func TestFeedbackPhaseTracksPeriodChange(t *testing.T) {
	k := sim.NewKernel()
	fb := NewFeedback(k, FeedbackConfig{SampleIntervalSec: 1})
	fb.JobArrived(3)

	at := 0.0
	iter := 0
	post := func(period float64, n int) {
		for i := 0; i < n; i++ {
			at += period
			iter++
			it := iter
			when := at
			k.Post(when, func() { fb.OnProgress(3, it) })
		}
	}
	post(3.0, 10)
	post(2.0, 12)
	k.RunUntil(at)

	p, ok := fb.Period(3)
	if !ok {
		t.Fatal("no period estimate")
	}
	if math.Abs(p-2.0) > 0.1 {
		t.Fatalf("period estimate %.4fs did not re-converge to 2.0s", p)
	}
}
