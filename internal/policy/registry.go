package policy

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Factory builds a policy instance from construction parameters.
type Factory func(Params) Policy

var (
	regMu     sync.RWMutex
	factories = map[string]Factory{} // normalized name -> factory
	canonical []string               // canonical names, registration order
)

// normalize makes lookup case-insensitive and tolerant of the usual
// flag spellings: "TLs-LAS", "tls-las" and "las" all resolve the same
// policy, and "static-rate"/"staticrate" match "StaticRate".
func normalize(name string) string {
	n := strings.ToLower(strings.TrimSpace(name))
	n = strings.ReplaceAll(n, "_", "-")
	n = strings.TrimPrefix(n, "tls-")
	n = strings.ReplaceAll(n, "-", "")
	return n
}

// Register adds a policy factory under its canonical name. Registering
// a duplicate (after normalization) panics: two policies answering to
// one flag value is a programming error.
func Register(name string, f Factory) {
	key := normalize(name)
	if key == "" || f == nil {
		panic("policy: Register needs a name and a factory")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := factories[key]; dup {
		panic(fmt.Sprintf("policy: %q already registered", name))
	}
	factories[key] = f
	canonical = append(canonical, name)
}

// Known reports whether the name resolves to a registered policy.
func Known(name string) bool {
	regMu.RLock()
	defer regMu.RUnlock()
	_, ok := factories[normalize(name)]
	return ok
}

// New builds the named policy. Unknown names return an error listing
// what is registered.
func New(name string, p Params) (Policy, error) {
	regMu.RLock()
	f, ok := factories[normalize(name)]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("policy: unknown policy %q (registered: %s)",
			name, strings.Join(Names(), ", "))
	}
	return f(p), nil
}

// Names returns every registered policy's canonical name, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, len(canonical))
	copy(out, canonical)
	sort.Strings(out)
	return out
}
