package policy

import (
	"testing"

	"repro/internal/sim"
)

func jobsFixture() []Job {
	return []Job{
		{ID: 10, ArrivalSeq: 2, UpdateBytes: 300},
		{ID: 11, ArrivalSeq: 0, UpdateBytes: 100},
		{ID: 12, ArrivalSeq: 1, UpdateBytes: 200},
	}
}

func ids(jobs []Job) []int {
	out := make([]int, len(jobs))
	for i, j := range jobs {
		out[i] = j.ID
	}
	return out
}

func eqInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSpreadBands(t *testing.T) {
	cases := []struct {
		n, bands, rot int
		want          []int
	}{
		{3, 3, 0, []int{0, 1, 2}},
		{3, 3, 1, []int{1, 2, 0}},
		{3, 3, 2, []int{2, 0, 1}},
		{6, 3, 0, []int{0, 0, 1, 1, 2, 2}}, // more jobs than bands: contiguous sharing
		{4, 6, 0, []int{0, 1, 3, 4}},       // fewer jobs than bands
		{1, 6, 5, []int{0}},
		{0, 3, 0, []int{}},
	}
	for _, c := range cases {
		got := SpreadBands(c.n, c.bands, c.rot)
		if !eqInts(got, c.want) {
			t.Errorf("SpreadBands(%d,%d,%d) = %v, want %v", c.n, c.bands, c.rot, got, c.want)
		}
	}
}

func TestStaticOrdersByArrival(t *testing.T) {
	p, _ := New("TLs-One", Params{Bands: 3, Order: OrderArrival})
	jobs := jobsFixture()
	bands := p.Rank(0, jobs, nil)
	if !eqInts(ids(jobs), []int{11, 12, 10}) {
		t.Fatalf("arrival order wrong: %v", ids(jobs))
	}
	if !eqInts(bands, []int{0, 1, 2}) {
		t.Fatalf("bands wrong: %v", bands)
	}
}

func TestStaticOrdersBySmallestUpdate(t *testing.T) {
	p, _ := New("TLs-One", Params{Bands: 3, Order: OrderSmallestUpdate})
	jobs := jobsFixture()
	p.Rank(0, jobs, nil)
	if !eqInts(ids(jobs), []int{11, 12, 10}) { // 100 < 200 < 300 bytes
		t.Fatalf("smallest-update order wrong: %v", ids(jobs))
	}
}

func TestStaticRandomOrderIsSeededAndValid(t *testing.T) {
	rank := func(seed int64) []int {
		p, _ := New("TLs-One", Params{Bands: 3, Order: OrderRandom,
			RNG: sim.NewRNG(seed).Stream("tensorlights")})
		jobs := jobsFixture()
		p.Rank(0, jobs, nil)
		return ids(jobs)
	}
	a, b := rank(7), rank(7)
	if !eqInts(a, b) {
		t.Fatalf("same seed gave different shuffles: %v vs %v", a, b)
	}
	seen := map[int]bool{}
	for _, id := range a {
		seen[id] = true
	}
	if len(seen) != 3 {
		t.Fatalf("shuffle lost a job: %v", a)
	}
}

func TestRoundRobinRotates(t *testing.T) {
	p, _ := New("TLs-RR", Params{Bands: 3, IntervalSec: 5})
	rr := p.(Rotator)
	jobs := jobsFixture()
	if got := p.Rank(0, jobs, nil); !eqInts(got, []int{0, 1, 2}) {
		t.Fatalf("rotation 0 bands: %v", got)
	}
	rr.Advance(5)
	if got := p.Rank(0, jobs, nil); !eqInts(got, []int{1, 2, 0}) {
		t.Fatalf("rotation 1 bands: %v", got)
	}
	rr.Advance(10)
	if got := p.Rank(0, jobs, nil); !eqInts(got, []int{2, 0, 1}) {
		t.Fatalf("rotation 2 bands: %v", got)
	}
	// A full cycle returns to the start.
	rr.Advance(15)
	if got := p.Rank(0, jobs, nil); !eqInts(got, []int{0, 1, 2}) {
		t.Fatalf("rotation 3 bands: %v", got)
	}
}

func TestLeastProgressFirst(t *testing.T) {
	p, _ := New("TLs-LPF", Params{Bands: 3, IntervalSec: 5})
	jobs := jobsFixture()
	jobs[0].Progress = 10 // id 10
	jobs[1].Progress = 40 // id 11
	jobs[2].Progress = 10 // id 12
	p.Rank(0, jobs, nil)
	// Ties on progress break by arrival: id 12 (seq 1) before id 10 (seq 2).
	if !eqInts(ids(jobs), []int{12, 10, 11}) {
		t.Fatalf("LPF order wrong: %v", ids(jobs))
	}
}

func TestStaticRateIdentityBands(t *testing.T) {
	p, _ := New("StaticRate", Params{Bands: 3, Order: OrderArrival})
	jobs := jobsFixture()
	bands := p.Rank(0, jobs, nil)
	// Per-job class indices: rank order, not spread across Bands.
	if !eqInts(bands, []int{0, 1, 2}) {
		t.Fatalf("StaticRate bands: %v", bands)
	}
	if !eqInts(ids(jobs), []int{11, 12, 10}) {
		t.Fatalf("StaticRate order: %v", ids(jobs))
	}
}
