package policy

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sim"
	"repro/internal/trace"
)

// Defaults for FeedbackConfig zero values.
const (
	// DefaultSampleIntervalSec is the telemetry sampling period.
	DefaultSampleIntervalSec = 5.0
	// DefaultRingSize is how many snapshots are retained per job.
	DefaultRingSize = 64
	// DefaultAgingTauSec is the LAS attained-service decay constant:
	// service a job received tau seconds ago counts 1/e as much as
	// service received now, so long-running jobs are not permanently
	// penalized for their history (Tiresias-style aging).
	DefaultAgingTauSec = 120.0
)

// FeedbackConfig tunes the collector; zero values select defaults.
type FeedbackConfig struct {
	SampleIntervalSec float64
	RingSize          int
	AgingTauSec       float64
}

func (c *FeedbackConfig) fillDefaults() {
	if c.SampleIntervalSec <= 0 {
		c.SampleIntervalSec = DefaultSampleIntervalSec
	}
	if c.RingSize <= 0 {
		c.RingSize = DefaultRingSize
	}
	if c.AgingTauSec <= 0 {
		c.AgingTauSec = DefaultAgingTauSec
	}
}

// Probe reads network-side telemetry for one host. The cluster layer
// implements it over the simulated fabric; tests substitute fakes.
type Probe interface {
	// BandDequeuedBytes returns cumulative dequeued bytes per priority
	// band (class id) on the host's egress qdisc, or nil when the
	// installed qdisc is classless. The map is a fresh copy.
	BandDequeuedBytes(host int) map[int]uint64
	// BacklogBytes returns the bytes queued at the host's egress.
	BacklogBytes(host int) int64
}

// Snapshot is one entry of a job's telemetry ring.
type Snapshot struct {
	At            float64 // sample time on the sim clock
	Progress      int     // completed iterations at the sample
	AttainedBytes int64   // cumulative bytes attributed to the job
	BacklogBytes  int64   // egress backlog summed over the job's hosts
	StragglerSec  float64 // time past the expected iteration period
}

// jobTelemetry is the collector's per-job state.
type jobTelemetry struct {
	id        int
	arrivedAt float64

	attained  int64   // cumulative attributed dequeue bytes
	decayed   float64 // exponentially aged attained service
	decayedAt float64 // sim time of the last decay update

	progress       int
	lastProgressAt float64
	periodEWMA     float64 // estimated seconds per iteration

	ring  []Snapshot // fixed-capacity ring of recent snapshots
	start int        // index of the oldest retained snapshot
	count int
}

// Feedback samples per-job attained service (per-band qdisc dequeue
// bytes), NIC backlog and iteration progress into per-job telemetry
// rings on the sim kernel clock. The controller registers jobs and
// band assignments; adaptive policies read the derived signals from
// Rank. All methods run on the single-threaded kernel.
type Feedback struct {
	cfg FeedbackConfig
	k   *sim.Kernel

	// Probe supplies qdisc and NIC readings; nil disables sampling
	// (progress-only telemetry still works).
	Probe Probe
	// Tracer, when non-nil, receives feedback_sample events.
	Tracer trace.Tracer

	jobs     map[int]*jobTelemetry
	assign   map[int]map[int]int    // host -> job id -> installed band
	lastBand map[int]map[int]uint64 // host -> band -> last cumulative bytes
	sampleEv *sim.Event
	samples  int
}

// NewFeedback creates a collector on the kernel clock.
func NewFeedback(k *sim.Kernel, cfg FeedbackConfig) *Feedback {
	cfg.fillDefaults()
	return &Feedback{
		cfg:      cfg,
		k:        k,
		jobs:     make(map[int]*jobTelemetry),
		assign:   make(map[int]map[int]int),
		lastBand: make(map[int]map[int]uint64),
	}
}

// Config returns the effective configuration.
func (f *Feedback) Config() FeedbackConfig { return f.cfg }

// Now returns the current sim time.
func (f *Feedback) Now() float64 { return f.k.Now() }

// Samples returns how many sampling rounds have run.
func (f *Feedback) Samples() int { return f.samples }

// JobArrived starts tracking a job; the sampling loop is armed on the
// first arrival.
func (f *Feedback) JobArrived(id int) {
	if _, dup := f.jobs[id]; dup {
		return
	}
	now := f.k.Now()
	f.jobs[id] = &jobTelemetry{
		id: id, arrivedAt: now, decayedAt: now, lastProgressAt: now,
		ring: make([]Snapshot, f.cfg.RingSize),
	}
	if f.sampleEv == nil {
		f.sampleEv = f.k.ScheduleAfter(f.cfg.SampleIntervalSec, f.sample)
	}
}

// JobDeparted drops a job's telemetry (finish or crash alike: its
// attained service must not leak into later attribution). The sampling
// loop stops once no jobs remain.
func (f *Feedback) JobDeparted(id int) {
	delete(f.jobs, id)
	for _, byJob := range f.assign {
		delete(byJob, id)
	}
	if len(f.jobs) == 0 && f.sampleEv != nil {
		f.k.Cancel(f.sampleEv)
		f.sampleEv = nil
	}
}

// Tracked reports whether the job currently has telemetry.
func (f *Feedback) Tracked(id int) bool {
	_, ok := f.jobs[id]
	return ok
}

// OnProgress records a completed iteration and refreshes the job's
// iteration-period estimate.
func (f *Feedback) OnProgress(id, iteration int) {
	t, ok := f.jobs[id]
	if !ok {
		return
	}
	now := f.k.Now()
	if dt := now - t.lastProgressAt; dt > 0 && iteration > t.progress {
		per := dt / float64(iteration-t.progress)
		if t.periodEWMA <= 0 {
			t.periodEWMA = per
		} else {
			t.periodEWMA = 0.7*t.periodEWMA + 0.3*per
		}
	}
	if iteration > t.progress {
		t.progress = iteration
	}
	t.lastProgressAt = now
}

// SetAssignments records which band each of a host's jobs is installed
// in, replacing the host's previous assignment. The map is copied.
func (f *Feedback) SetAssignments(host int, byJob map[int]int) {
	if len(byJob) == 0 {
		f.ClearHost(host)
		return
	}
	cp := make(map[int]int, len(byJob))
	for id, band := range byJob {
		cp[id] = band
	}
	f.assign[host] = cp
}

// ClearHost forgets a host's band assignments and counter baseline —
// called when the host's managed qdisc is removed or its installed
// state becomes unknown.
func (f *Feedback) ClearHost(host int) {
	delete(f.assign, host)
	delete(f.lastBand, host)
}

// decay ages a job's attained service to now.
func (t *jobTelemetry) decay(now float64, tau float64) {
	if dt := now - t.decayedAt; dt > 0 {
		t.decayed *= math.Exp(-dt / tau)
		t.decayedAt = now
	}
}

// credit attributes service bytes to the job.
func (t *jobTelemetry) credit(now float64, bytes float64, tau float64) {
	t.decay(now, tau)
	t.attained += int64(bytes)
	t.decayed += bytes
}

// AttainedService returns the job's exponentially aged attained
// service in bytes. Without new service it is non-increasing in time.
func (f *Feedback) AttainedService(id int) float64 {
	t, ok := f.jobs[id]
	if !ok {
		return 0
	}
	t.decay(f.k.Now(), f.cfg.AgingTauSec)
	return t.decayed
}

// AttainedBytes returns the job's cumulative (un-aged) attributed
// service.
func (f *Feedback) AttainedBytes(id int) int64 {
	if t, ok := f.jobs[id]; ok {
		return t.attained
	}
	return 0
}

// Progress returns the job's last reported iteration.
func (f *Feedback) Progress(id int) int {
	if t, ok := f.jobs[id]; ok {
		return t.progress
	}
	return 0
}

// BytesPerIteration estimates the job's service demand per iteration
// from attributed bytes and reported progress; 0 when unobserved.
func (f *Feedback) BytesPerIteration(id int) float64 {
	t, ok := f.jobs[id]
	if !ok || t.progress <= 0 || t.attained <= 0 {
		return 0
	}
	return float64(t.attained) / float64(t.progress)
}

// Period returns the job's estimated seconds per iteration (the
// progress EWMA) and whether an estimate exists yet. The cluster
// scheduler's phase-aware interleaving consumes it together with
// LastProgressAt to predict where the job's next communication burst
// will land.
func (f *Feedback) Period(id int) (float64, bool) {
	t, ok := f.jobs[id]
	if !ok || t.periodEWMA <= 0 {
		return 0, false
	}
	return t.periodEWMA, true
}

// LastProgressAt returns the sim time of the job's most recent
// completed iteration — the anchor of its communication phase: burst k
// is expected near LastProgressAt + k*Period.
func (f *Feedback) LastProgressAt(id int) (float64, bool) {
	t, ok := f.jobs[id]
	if !ok {
		return 0, false
	}
	return t.lastProgressAt, true
}

// Phase returns how far the job is through its current iteration as a
// fraction of its estimated period, and whether a period estimate
// exists. A job near phase 1 is about to emit its next communication
// burst.
func (f *Feedback) Phase(id int) (float64, bool) {
	t, ok := f.jobs[id]
	if !ok || t.periodEWMA <= 0 {
		return 0, false
	}
	frac := (f.k.Now() - t.lastProgressAt) / t.periodEWMA
	return frac - math.Floor(frac), true
}

// Snapshots returns a copy of the job's retained telemetry ring,
// oldest first.
func (f *Feedback) Snapshots(id int) []Snapshot {
	t, ok := f.jobs[id]
	if !ok {
		return nil
	}
	out := make([]Snapshot, 0, t.count)
	for i := 0; i < t.count; i++ {
		out = append(out, t.ring[(t.start+i)%len(t.ring)])
	}
	return out
}

// sample is one round of the kernel-scheduled collection loop: read
// per-band dequeue counters and backlog on every host with installed
// assignments, attribute the deltas to jobs, and append one snapshot
// per tracked job. Hosts and jobs are visited in ascending id order so
// runs stay deterministic.
func (f *Feedback) sample() {
	f.sampleEv = nil
	if len(f.jobs) == 0 {
		return
	}
	now := f.k.Now()
	f.samples++
	backlog := make(map[int]int64)
	if f.Probe != nil {
		hosts := make([]int, 0, len(f.assign))
		for h := range f.assign {
			hosts = append(hosts, h)
		}
		sort.Ints(hosts)
		for _, host := range hosts {
			byJob := f.assign[host]
			cur := f.Probe.BandDequeuedBytes(host)
			prev := f.lastBand[host]
			bands := make([]int, 0, len(cur))
			for b := range cur {
				bands = append(bands, b)
			}
			sort.Ints(bands)
			for _, band := range bands {
				delta := cur[band]
				if p, ok := prev[band]; ok && p <= delta {
					delta -= p
				}
				// A reinstalled qdisc resets its counters; cur < prev
				// then means "everything dequeued since reinstall".
				if delta == 0 {
					continue
				}
				var sharers []int
				for id, b := range byJob {
					if b == band {
						sharers = append(sharers, id)
					}
				}
				if len(sharers) == 0 {
					continue
				}
				sort.Ints(sharers)
				share := float64(delta) / float64(len(sharers))
				for _, id := range sharers {
					if t, ok := f.jobs[id]; ok {
						t.credit(now, share, f.cfg.AgingTauSec)
					}
				}
			}
			f.lastBand[host] = cur
			hb := f.Probe.BacklogBytes(host)
			for id := range byJob {
				backlog[id] += hb
			}
		}
	}
	ids := make([]int, 0, len(f.jobs))
	for id := range f.jobs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		t := f.jobs[id]
		var straggler float64
		if t.periodEWMA > 0 {
			if late := (now - t.lastProgressAt) - t.periodEWMA; late > 0 {
				straggler = late
			}
		}
		snap := Snapshot{
			At: now, Progress: t.progress, AttainedBytes: t.attained,
			BacklogBytes: backlog[id], StragglerSec: straggler,
		}
		t.ring[(t.start+t.count)%len(t.ring)] = snap
		if t.count < len(t.ring) {
			t.count++
		} else {
			t.start = (t.start + 1) % len(t.ring)
		}
		if f.Tracer != nil {
			f.Tracer.Emit(trace.Event{
				At: now, Kind: trace.KindFeedbackSample,
				Job: id, Host: -1, Worker: -1,
				Value: float64(t.attained),
				Detail: fmt.Sprintf("progress=%d backlog=%d straggler=%.3f",
					t.progress, snap.BacklogBytes, straggler),
			})
		}
	}
	f.sampleEv = f.k.ScheduleAfter(f.cfg.SampleIntervalSec, f.sample)
}
