package policy

// Builtin adapters: the paper's policies, previously hard-coded in
// core.Controller, re-expressed against the Policy interface. Their
// ranking semantics (including tie-breaks and RNG draw order) are
// byte-for-byte compatible with the pre-registry controller; the sweep
// package's golden-trace regression test enforces that.

func init() {
	Register("FIFO", func(Params) Policy { return fifo{} })
	Register("TLs-One", func(p Params) Policy { return &static{p: p} })
	Register("TLs-RR", func(p Params) Policy { return &roundRobin{p: p} })
	Register("TLs-LPF", func(p Params) Policy { return &leastProgress{p: p} })
	Register("StaticRate", func(p Params) Policy { return &staticRate{p: p} })
}

// fifo is the paper's baseline: TensorLights disabled, NICs on their
// default qdisc. Rank is never consulted.
type fifo struct{}

func (fifo) Name() string { return "FIFO" }

func (fifo) Rank(int, []Job, *Feedback) []int { return nil }

func (fifo) NoOp() {}

// static is TLs-One: one ranking per membership change, in the
// configured static order.
type static struct{ p Params }

func (s *static) Name() string { return "TLs-One" }

func (s *static) Rank(host int, jobs []Job, _ *Feedback) []int {
	orderJobs(jobs, s.p.Order, s.p.RNG)
	return SpreadBands(len(jobs), s.p.Bands, 0)
}

// roundRobin is TLs-RR: the static order with a rotation offset that
// advances every interval — the paper's green/yellow light change.
type roundRobin struct {
	p        Params
	rotation int
}

func (r *roundRobin) Name() string { return "TLs-RR" }

func (r *roundRobin) Rank(host int, jobs []Job, _ *Feedback) []int {
	orderJobs(jobs, r.p.Order, r.p.RNG)
	return SpreadBands(len(jobs), r.p.Bands, r.rotation)
}

func (r *roundRobin) RotateInterval() float64 { return r.p.IntervalSec }

func (r *roundRobin) Advance(now float64) {
	if r.p.TimeAnchored && r.p.IntervalSec > 0 {
		// Grid-timer mode fires Advance at exact multiples of the
		// interval; deriving the offset from time (instead of counting
		// calls) keeps controllers that armed at different first-arrival
		// times in phase.
		r.rotation = int(now/r.p.IntervalSec + 0.5)
		return
	}
	r.rotation++
}

// leastProgress is TLs-LPF: every interval, jobs are re-ranked
// least-progress-first so whichever job has fallen behind gets the
// green light next — TLs-RR's fairness goal with feedback instead of
// blind rotation. The progress signal rides on Job (the controller
// records it from barrier callbacks), so LPF needs no Feedback
// collector.
type leastProgress struct{ p Params }

func (l *leastProgress) Name() string { return "TLs-LPF" }

func (l *leastProgress) Rank(host int, jobs []Job, _ *Feedback) []int {
	sortBy(jobs, func(a, b Job) bool {
		if a.Progress != b.Progress {
			return a.Progress < b.Progress
		}
		return a.ArrivalSeq < b.ArrivalSeq
	})
	return SpreadBands(len(jobs), l.p.Bands, 0)
}

func (l *leastProgress) RotateInterval() float64 { return l.p.IntervalSec }

func (l *leastProgress) Advance(float64) {}

// staticRate is the paper's §VII transmission-layer alternative: each
// contending job pinned to an equal static rate share. The returned
// bands are per-job class indices (rank order), which the controller
// realizes as rate = ceil = link/N classes.
type staticRate struct{ p Params }

func (s *staticRate) Name() string { return "StaticRate" }

func (s *staticRate) Rank(host int, jobs []Job, _ *Feedback) []int {
	orderJobs(jobs, s.p.Order, s.p.RNG)
	out := make([]int, len(jobs))
	for i := range out {
		out[i] = i
	}
	return out
}

func (s *staticRate) StaticRate() {}
