// Package sim provides a deterministic discrete-event simulation kernel:
// a simulated clock, a cancellable event queue, and seeded random number
// streams. All simulations in this repository are single-threaded per run
// and therefore fully reproducible given a seed; parallelism is applied
// across independent runs by higher layers.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is simulated time in seconds since the start of the run.
type Time = float64

// Forever is a sentinel meaning "never" for schedule horizons.
const Forever Time = math.MaxFloat64

// Event is a scheduled callback. Events fire in (time, priority, seq)
// order: earlier time first, then lower priority value, then insertion
// order. The priority field lets callers order simultaneous events
// deterministically (e.g. "complete transfers before starting new ones").
type Event struct {
	at       Time
	priority int
	seq      uint64
	index    int // heap index; -1 when not queued
	fn       func()
	canceled bool
}

// At returns the time the event is scheduled to fire.
func (e *Event) At() Time { return e.at }

// Canceled reports whether the event has been canceled.
func (e *Event) Canceled() bool { return e.canceled }

// Pending reports whether the event is still queued and not canceled.
func (e *Event) Pending() bool { return !e.canceled && e.index >= 0 }

// Kernel is the discrete-event engine. The zero value is not usable; use
// NewKernel.
type Kernel struct {
	now    Time
	queue  eventHeap
	seq    uint64
	nFired uint64
	// Hard safety cap on events fired in one Run; prevents runaway
	// simulations from spinning forever. Zero means no cap.
	MaxEvents uint64
}

// NewKernel returns a kernel with the clock at zero.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Fired returns the number of events fired so far.
func (k *Kernel) Fired() uint64 { return k.nFired }

// Pending returns the number of events queued (including canceled events
// not yet discarded).
func (k *Kernel) Pending() int { return len(k.queue) }

// Schedule queues fn to run at absolute time at with priority 0.
// Scheduling in the past panics: it always indicates a model bug.
func (k *Kernel) Schedule(at Time, fn func()) *Event {
	return k.SchedulePrio(at, 0, fn)
}

// ScheduleAfter queues fn to run delay seconds from now.
func (k *Kernel) ScheduleAfter(delay Time, fn func()) *Event {
	return k.SchedulePrio(k.now+delay, 0, fn)
}

// SchedulePrio queues fn at time at with an explicit tie-break priority.
func (k *Kernel) SchedulePrio(at Time, priority int, fn func()) *Event {
	if at < k.now {
		panic(fmt.Sprintf("sim: schedule at %.9f before now %.9f", at, k.now))
	}
	if fn == nil {
		panic("sim: schedule nil func")
	}
	k.seq++
	e := &Event{at: at, priority: priority, seq: k.seq, fn: fn, index: -1}
	heap.Push(&k.queue, e)
	return e
}

// Cancel marks the event canceled; it will be discarded when it reaches
// the head of the queue. Cancelling nil or an already-fired event is a
// no-op, so callers may cancel unconditionally.
func (k *Kernel) Cancel(e *Event) {
	if e == nil {
		return
	}
	e.canceled = true
}

// Step fires the next pending event. It returns false when the queue is
// empty (after discarding canceled events).
func (k *Kernel) Step() bool {
	for len(k.queue) > 0 {
		e := heap.Pop(&k.queue).(*Event)
		if e.canceled {
			continue
		}
		if e.at < k.now {
			panic("sim: event queue time went backwards")
		}
		k.now = e.at
		k.nFired++
		e.fn()
		return true
	}
	return false
}

// Run fires events until the queue drains or until stops returns true
// (checked before each event). It returns the number of events fired.
func (k *Kernel) Run(stop func() bool) uint64 {
	start := k.nFired
	for {
		if stop != nil && stop() {
			break
		}
		if k.MaxEvents > 0 && k.nFired-start >= k.MaxEvents {
			panic(fmt.Sprintf("sim: exceeded MaxEvents=%d (runaway simulation?)", k.MaxEvents))
		}
		if !k.Step() {
			break
		}
	}
	return k.nFired - start
}

// RunUntil fires events with timestamps <= deadline, leaving later events
// queued and advancing the clock to deadline if it passed it.
func (k *Kernel) RunUntil(deadline Time) {
	for len(k.queue) > 0 {
		e := k.queue[0]
		if e.canceled {
			heap.Pop(&k.queue)
			continue
		}
		if e.at > deadline {
			break
		}
		k.Step()
	}
	if k.now < deadline {
		k.now = deadline
	}
}

// eventHeap is a min-heap on (at, priority, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	if a.at != b.at {
		return a.at < b.at
	}
	if a.priority != b.priority {
		return a.priority < b.priority
	}
	return a.seq < b.seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}
