// Package sim provides a deterministic discrete-event simulation kernel:
// a simulated clock, a cancellable event queue, and seeded random number
// streams. All simulations in this repository are single-threaded per run
// and therefore fully reproducible given a seed; parallelism is applied
// across independent runs by higher layers (see internal/sweep's Engine).
package sim

import (
	"fmt"
	"math"
)

// Time is simulated time in seconds since the start of the run.
type Time = float64

// Forever is a sentinel meaning "never" for schedule horizons.
const Forever Time = math.MaxFloat64

// Event is a scheduled callback. Events fire in (time, priority, seq)
// order: earlier time first, then lower priority value, then insertion
// order. The priority field lets callers order simultaneous events
// deterministically (e.g. "complete transfers before starting new ones").
type Event struct {
	at       Time
	fn       func()
	// fnA/arg is the allocation-free alternative to closing over a single
	// pointer: PostArg events carry the argument in the event struct, so
	// hot paths that would otherwise build a one-word closure per event
	// (chunk service completion, flow injection) allocate nothing.
	fnA      func(any)
	arg      any
	seq      uint64
	priority int32
	index    int32 // heap index; -1 when not queued
	canceled bool
	// pooled marks events scheduled through Post*: no handle was ever
	// handed out, so the kernel may recycle the struct after it fires or
	// is discarded. Handle-returning Schedule* events are never pooled —
	// callers may hold (and Cancel) their pointer long after the event
	// fired, and reuse would alias a live event.
	pooled bool
}

// At returns the time the event is scheduled to fire.
func (e *Event) At() Time { return e.at }

// Canceled reports whether the event has been canceled.
func (e *Event) Canceled() bool { return e.canceled }

// Pending reports whether the event is still queued and not canceled.
func (e *Event) Pending() bool { return !e.canceled && e.index >= 0 }

// before is the queue ordering: (at, priority, seq) ascending.
func (e *Event) before(o *Event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	if e.priority != o.priority {
		return e.priority < o.priority
	}
	return e.seq < o.seq
}

// Kernel is the discrete-event engine. The zero value is not usable; use
// NewKernel. Kernels are single-threaded: one goroutine owns a kernel and
// everything scheduled on it for the whole run.
type Kernel struct {
	now    Time
	queue  eventHeap
	seq    uint64
	nFired uint64
	// free recycles pooled (handle-less) events; see Post.
	free []*Event
	// allocs counts Event structs allocated (not served from the pool).
	allocs uint64
	// batch is Run's scratch for draining same-(at, priority) event runs.
	batch []*Event
	// Hard safety cap on events fired in one Run; prevents runaway
	// simulations from spinning forever. Zero means no cap.
	MaxEvents uint64
}

// NewKernel returns a kernel with the clock at zero.
func NewKernel() *Kernel {
	return &Kernel{}
}

// nilFunc stands in for fn while newEvent validates a PostArg event;
// the caller replaces it with the fnA/arg pair.
func nilFunc() {}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Fired returns the number of events fired so far.
func (k *Kernel) Fired() uint64 { return k.nFired }

// EventAllocs returns how many Event structs were heap-allocated, i.e.
// not served from the pooled free list. With Post-heavy workloads this
// stays far below Fired(); benchmarks report allocs/event from it.
func (k *Kernel) EventAllocs() uint64 { return k.allocs }

// Pending returns the number of events queued (including canceled events
// not yet discarded).
func (k *Kernel) Pending() int { return len(k.queue) }

// Schedule queues fn to run at absolute time at with priority 0.
// Scheduling in the past panics: it always indicates a model bug.
func (k *Kernel) Schedule(at Time, fn func()) *Event {
	return k.newEvent(at, 0, fn, false)
}

// ScheduleAfter queues fn to run delay seconds from now.
func (k *Kernel) ScheduleAfter(delay Time, fn func()) *Event {
	return k.newEvent(k.now+delay, 0, fn, false)
}

// SchedulePrio queues fn at time at with an explicit tie-break priority.
func (k *Kernel) SchedulePrio(at Time, priority int, fn func()) *Event {
	return k.newEvent(at, priority, fn, false)
}

// Post queues fn at absolute time at without returning a cancellation
// handle. Handle-less events are recycled through an internal pool, so
// hot paths that schedule once per chunk (service completion, wire
// propagation, delivery) run allocation-free. Use Schedule when the
// caller needs to Cancel or inspect the event later.
func (k *Kernel) Post(at Time, fn func()) {
	k.newEvent(at, 0, fn, true)
}

// PostAfter queues fn to run delay seconds from now, without a handle.
func (k *Kernel) PostAfter(delay Time, fn func()) {
	k.newEvent(k.now+delay, 0, fn, true)
}

// PostPrio queues fn at time at with a tie-break priority, no handle.
func (k *Kernel) PostPrio(at Time, priority int, fn func()) {
	k.newEvent(at, priority, fn, true)
}

// PostArg queues fn(arg) at absolute time at, without a handle. The
// argument rides in the pooled event struct, so callers that would
// otherwise close over one pointer per event (the per-chunk hot paths)
// schedule with zero allocations by reusing a long-lived fn.
func (k *Kernel) PostArg(at Time, fn func(any), arg any) {
	if fn == nil {
		panic("sim: schedule nil func")
	}
	e := k.newEvent(at, 0, nilFunc, true)
	e.fn = nil
	e.fnA = fn
	e.arg = arg
}

// PostArgAfter queues fn(arg) delay seconds from now, without a handle.
func (k *Kernel) PostArgAfter(delay Time, fn func(any), arg any) {
	k.PostArg(k.now+delay, fn, arg)
}

func (k *Kernel) newEvent(at Time, priority int, fn func(), pooled bool) *Event {
	if at < k.now {
		panic(fmt.Sprintf("sim: schedule at %.9f before now %.9f", at, k.now))
	}
	if fn == nil {
		panic("sim: schedule nil func")
	}
	k.seq++
	var e *Event
	if n := len(k.free); pooled && n > 0 {
		e = k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
	} else {
		e = &Event{}
		k.allocs++
	}
	e.at = at
	e.fn = fn
	e.seq = k.seq
	e.priority = int32(priority)
	e.index = -1
	e.canceled = false
	e.pooled = pooled
	k.queue.push(e)
	return e
}

// recycle returns a pooled event to the free list once no reference to
// it can remain (it fired, or it was canceled and discarded). Non-pooled
// events are left to the garbage collector: their handle may outlive the
// event arbitrarily.
func (k *Kernel) recycle(e *Event) {
	if !e.pooled {
		return
	}
	e.fn = nil
	e.fnA = nil
	e.arg = nil
	// Invalidate outstanding Tickets: seq 0 is never issued, so stale
	// tickets stop matching the moment the struct returns to the pool.
	e.seq = 0
	k.free = append(k.free, e)
}

// Cancel marks the event canceled; it will be discarded when it reaches
// the head of the queue. Cancelling nil or an already-fired event is a
// no-op, so callers may cancel unconditionally.
func (k *Kernel) Cancel(e *Event) {
	if e == nil {
		return
	}
	e.canceled = true
}

// A Ticket names one incarnation of a pooled event for best-effort
// cancellation. Pooled event structs are recycled the moment they fire,
// so a bare *Event pointer would be unsafe to hold: cancelling it later
// could cancel whatever unrelated event reused the struct. The ticket
// pairs the pointer with the event's unique sequence stamp; once the
// struct is reused the stamps disagree and the ticket degrades to a
// no-op. The zero Ticket is valid and cancels nothing.
type Ticket struct {
	ev  *Event
	seq uint64
}

// Active reports whether the ticket still names a live (queued,
// uncancelled) incarnation of its event.
func (t Ticket) Active() bool {
	return t.ev != nil && t.ev.seq == t.seq && !t.ev.canceled
}

// PostTicket queues fn at absolute time at as a pooled event — the
// allocation-free path of Post — and returns a Ticket for it. Use this
// over Schedule when a hot path needs to re-arm a single logical timer:
// the event struct recycles through the pool, and the stale ticket left
// behind after it fires is harmless.
func (k *Kernel) PostTicket(at Time, fn func()) Ticket {
	e := k.newEvent(at, 0, fn, true)
	return Ticket{ev: e, seq: e.seq}
}

// CancelTicket cancels the ticketed event if that incarnation is still
// queued; stale tickets (the event fired, and its struct may since have
// been reused) and the zero Ticket are no-ops.
func (k *Kernel) CancelTicket(t Ticket) {
	if t.ev != nil && t.ev.seq == t.seq {
		t.ev.canceled = true
	}
}

// Step fires the next pending event. It returns false when the queue is
// empty (after discarding canceled events).
func (k *Kernel) Step() bool {
	for len(k.queue) > 0 {
		e := k.queue.pop()
		if e.canceled {
			k.recycle(e)
			continue
		}
		if e.at < k.now {
			panic("sim: event queue time went backwards")
		}
		k.now = e.at
		k.nFired++
		fn, fnA, arg := e.fn, e.fnA, e.arg
		// Recycle before calling: the callback may schedule new events,
		// which can then reuse this struct — safe, as no handle exists.
		k.recycle(e)
		if fnA != nil {
			fnA(arg)
		} else {
			fn()
		}
		return true
	}
	return false
}

// Run fires events until the queue drains or until stop returns true
// (checked before each event). It returns the number of events fired.
//
// Run batch-drains the heap: all head events sharing the same
// (time, priority) are popped in one pass and dispatched without
// re-entering the heap per event, which skips one sift-down per
// simultaneous event — the common case in barrier-heavy workloads
// (window kicks, collective steps). Firing order is identical to the
// one-Step-at-a-time loop: batch members fire in seq order, and if a
// callback schedules an event that sorts before the rest of the batch,
// the tail is pushed back so the new event takes its proper turn.
func (k *Kernel) Run(stop func() bool) uint64 {
	start := k.nFired
	batch := k.batch[:0]
	defer func() {
		for i := range batch[:cap(batch)] {
			batch[:cap(batch)][i] = nil
		}
		k.batch = batch[:0]
	}()
	for {
		// Collect the run of head events sharing (at, priority).
		batch = batch[:0]
		for len(k.queue) > 0 {
			e := k.queue[0]
			if e.canceled {
				k.recycle(k.queue.pop())
				continue
			}
			if len(batch) > 0 && (e.at != batch[0].at || e.priority != batch[0].priority) {
				break
			}
			batch = append(batch, k.queue.pop())
		}
		if len(batch) == 0 {
			return k.nFired - start
		}
		if batch[0].at < k.now {
			panic("sim: event queue time went backwards")
		}
		k.now = batch[0].at
		for i := 0; i < len(batch); i++ {
			e := batch[i]
			if e.canceled { // canceled by an earlier batch member
				k.recycle(e)
				continue
			}
			if stop != nil && stop() {
				// Re-queue the unfired tail (including e) so the caller
				// can resume; push preserves seq, so order is unchanged.
				for _, r := range batch[i:] {
					k.queue.push(r)
				}
				return k.nFired - start
			}
			if k.MaxEvents > 0 && k.nFired-start >= k.MaxEvents {
				panic(fmt.Sprintf("sim: exceeded MaxEvents=%d (runaway simulation?)", k.MaxEvents))
			}
			k.nFired++
			fn, fnA, arg := e.fn, e.fnA, e.arg
			k.recycle(e)
			if fnA != nil {
				fnA(arg)
			} else {
				fn()
			}
			// The callback may have scheduled an event that sorts before
			// the rest of the batch; re-queue the tail so it fires in its
			// proper place.
			if i+1 < len(batch) && len(k.queue) > 0 && k.queue[0].before(batch[i+1]) {
				for _, r := range batch[i+1:] {
					k.queue.push(r)
				}
				break
			}
		}
	}
}

// NextAt returns the timestamp of the earliest pending event, discarding
// canceled events it finds on the way. ok is false when the queue is
// empty. The sharded engine uses it to derive the next conservative
// window from the global minimum next-event time.
func (k *Kernel) NextAt() (at Time, ok bool) {
	for len(k.queue) > 0 {
		e := k.queue[0]
		if e.canceled {
			k.recycle(k.queue.pop())
			continue
		}
		return e.at, true
	}
	return 0, false
}

// RunBefore fires events with timestamps strictly less than deadline,
// leaving later events queued and the clock at the last fired event —
// it never advances the clock to the deadline itself. This is the
// conservative-window primitive: a shard may safely execute everything
// before windowEnd because no cross-shard message can arrive earlier.
// It returns the number of events fired.
func (k *Kernel) RunBefore(deadline Time) uint64 {
	start := k.nFired
	for len(k.queue) > 0 {
		e := k.queue[0]
		if e.canceled {
			k.recycle(k.queue.pop())
			continue
		}
		if e.at >= deadline {
			break
		}
		if k.MaxEvents > 0 && k.nFired-start >= k.MaxEvents {
			panic(fmt.Sprintf("sim: exceeded MaxEvents=%d (runaway simulation?)", k.MaxEvents))
		}
		k.Step()
	}
	return k.nFired - start
}

// RunUntil fires events with timestamps <= deadline, leaving later events
// queued and advancing the clock to deadline if it passed it.
func (k *Kernel) RunUntil(deadline Time) {
	for len(k.queue) > 0 {
		e := k.queue[0]
		if e.canceled {
			k.recycle(k.queue.pop())
			continue
		}
		if e.at > deadline {
			break
		}
		k.Step()
	}
	if k.now < deadline {
		k.now = deadline
	}
}

// eventHeap is a min-heap on (at, priority, seq). The heap is hand-rolled
// rather than built on container/heap: sift operations on the concrete
// type inline and skip the interface dispatch that container/heap pays on
// every comparison — the kernel's hottest loop.
type eventHeap []*Event

func (h *eventHeap) push(e *Event) {
	q := append(*h, e)
	*h = q
	i := len(q) - 1
	e.index = int32(i)
	for i > 0 {
		parent := (i - 1) / 2
		if !q[i].before(q[parent]) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		q[i].index = int32(i)
		q[parent].index = int32(parent)
		i = parent
	}
}

func (h *eventHeap) pop() *Event {
	q := *h
	n := len(q) - 1
	top := q[0]
	q[0] = q[n]
	q[0].index = 0
	q[n] = nil
	q = q[:n]
	*h = q
	if n > 1 {
		h.down(0)
	}
	top.index = -1
	return top
}

func (h *eventHeap) down(i int) {
	q := *h
	n := len(q)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		small := l
		if r := l + 1; r < n && q[r].before(q[l]) {
			small = r
		}
		if !q[small].before(q[i]) {
			break
		}
		q[i], q[small] = q[small], q[i]
		q[i].index = int32(i)
		q[small].index = int32(small)
		i = small
	}
}
