package sim

import (
	"math/rand"
	"testing"
)

// buildTieHeavyWorkload schedules a random workload with many exact
// (at, priority) ties onto k. Each event appends its model ID to *out;
// some events chain follow-ups, including same-time ones, to exercise
// mid-batch interference.
func buildTieHeavyWorkload(k *Kernel, rng *rand.Rand, out *[]int) {
	next := 0
	var add func(at float64, prio int, depth int)
	add = func(at float64, prio int, depth int) {
		id := next
		next++
		fn := func() {
			*out = append(*out, id)
			if depth > 0 && rng.Intn(3) == 0 {
				// Same-time follow-up at a random priority: may sort
				// before the rest of the current batch.
				add(k.Now(), rng.Intn(5)-2, depth-1)
			}
			if depth > 0 && rng.Intn(3) == 0 {
				add(k.Now()+float64(rng.Intn(3))*0.5, rng.Intn(3), depth-1)
			}
		}
		if rng.Intn(2) == 0 {
			k.PostPrio(at, prio, fn)
		} else {
			k.SchedulePrio(at, prio, fn)
		}
	}
	for i := 0; i < 150; i++ {
		// Coarse times and few priorities force large simultaneous runs.
		add(float64(rng.Intn(10)), rng.Intn(3), 2)
	}
}

// TestRunMatchesStepLoop pins the batch-drain contract: Run fires the
// exact same event sequence as the one-Step-at-a-time loop, including
// under same-time follow-ups scheduled mid-batch.
func TestRunMatchesStepLoop(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		seed := int64(4000 + trial)

		var batched []int
		kb := NewKernel()
		buildTieHeavyWorkload(kb, rand.New(rand.NewSource(seed)), &batched)
		kb.Run(nil)

		var stepped []int
		ks := NewKernel()
		buildTieHeavyWorkload(ks, rand.New(rand.NewSource(seed)), &stepped)
		for ks.Step() {
		}

		if len(batched) != len(stepped) {
			t.Fatalf("trial %d: Run fired %d events, Step loop %d", trial, len(batched), len(stepped))
		}
		for i := range batched {
			if batched[i] != stepped[i] {
				t.Fatalf("trial %d: order diverges at %d: Run=%v Step=%v", trial, i, batched[i], stepped[i])
			}
		}
		if kb.Fired() != ks.Fired() || kb.Now() != ks.Now() {
			t.Fatalf("trial %d: Fired/Now mismatch: %d@%g vs %d@%g",
				trial, kb.Fired(), kb.Now(), ks.Fired(), ks.Now())
		}
	}
}

// TestRunStopMidBatchResumes stops Run in the middle of a same-(at,prio)
// batch and checks the unfired tail is re-queued so a later Run resumes
// with identical total order.
func TestRunStopMidBatchResumes(t *testing.T) {
	k := NewKernel()
	var fired []int
	for i := 0; i < 10; i++ {
		id := i
		k.Post(1, func() { fired = append(fired, id) })
	}
	n := 0
	stopAfter3 := func() bool { n++; return n > 3 }
	k.Run(stopAfter3)
	if len(fired) != 3 {
		t.Fatalf("stopped run fired %d events, want 3", len(fired))
	}
	if k.Pending() != 7 {
		t.Fatalf("pending after stop = %d, want 7", k.Pending())
	}
	k.Run(nil)
	if len(fired) != 10 {
		t.Fatalf("resumed run total %d events, want 10", len(fired))
	}
	for i, id := range fired {
		if id != i {
			t.Fatalf("order broken across stop/resume: %v", fired)
		}
	}
}

// TestRunCancelWithinBatch has an early batch member cancel a later one
// after both were drained from the heap in the same pass.
func TestRunCancelWithinBatch(t *testing.T) {
	k := NewKernel()
	var fired []string
	var victim *Event
	k.Post(1, func() {
		fired = append(fired, "canceler")
		k.Cancel(victim)
	})
	victim = k.Schedule(1, func() { fired = append(fired, "victim") })
	k.Post(1, func() { fired = append(fired, "bystander") })
	k.Run(nil)
	if len(fired) != 2 || fired[0] != "canceler" || fired[1] != "bystander" {
		t.Fatalf("fired = %v, want [canceler bystander]", fired)
	}
}

func TestPostArgDeliversArgument(t *testing.T) {
	k := NewKernel()
	type payload struct{ v int }
	var got []int
	sink := func(a any) { got = append(got, a.(*payload).v) }
	p1, p2 := &payload{1}, &payload{2}
	k.PostArg(2, sink, p2)
	k.PostArgAfter(1, sink, p1)
	k.Run(nil)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("got %v, want [1 2]", got)
	}
}

// TestPostArgPoolReuse checks PostArg events flow through the same free
// list as Post events: steady-state scheduling allocates no new Events.
func TestPostArgPoolReuse(t *testing.T) {
	k := NewKernel()
	// Ping-pong a counter through PostArg and assert the pool bounds
	// Event allocations.
	var pong func(a any)
	pong = func(a any) {
		n := a.(int)
		if n < 1000 {
			k.PostArgAfter(1, pong, n+1)
		}
	}
	k.PostArg(0, pong, 0)
	k.Run(nil)
	if k.Fired() != 1001 {
		t.Fatalf("fired %d, want 1001", k.Fired())
	}
	if k.EventAllocs() > 4 {
		t.Fatalf("PostArg not pooled: %d event allocs for %d fired", k.EventAllocs(), k.Fired())
	}
}

func TestPostArgNilFuncPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PostArg(nil) did not panic")
		}
	}()
	NewKernel().PostArg(0, nil, 1)
}
