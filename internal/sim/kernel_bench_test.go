package sim

import "testing"

// BenchmarkKernelPost measures the pooled, handle-less schedule/fire
// path — the hot loop under simnet's per-chunk events. After warmup the
// free list serves every event, so allocs/op should be ~0.
func BenchmarkKernelPost(b *testing.B) {
	k := NewKernel()
	b.ReportAllocs()
	fn := func() {}
	for i := 0; i < b.N; i++ {
		k.PostAfter(1, fn)
		k.Step()
	}
	b.ReportMetric(float64(k.EventAllocs())/float64(b.N), "eventallocs/op")
}

// BenchmarkKernelSchedule measures the handle-returning path, which
// must allocate a fresh Event per call (handles may outlive the fire).
func BenchmarkKernelSchedule(b *testing.B) {
	k := NewKernel()
	b.ReportAllocs()
	fn := func() {}
	for i := 0; i < b.N; i++ {
		k.ScheduleAfter(1, fn)
		k.Step()
	}
}

// BenchmarkKernelHeapChurn keeps a deep queue (1024 pending events) so
// every push/pop pays full sift depth — the heap's worst case.
func BenchmarkKernelHeapChurn(b *testing.B) {
	k := NewKernel()
	fn := func() {}
	const depth = 1024
	// Seed the queue with a spread of deadlines.
	for i := 0; i < depth; i++ {
		k.Post(float64(i%37)+1, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Post(k.Now()+float64(i%37)+1, fn)
		k.Step()
	}
}

// BenchmarkKernelCancel measures scheduling plus cancellation plus the
// lazy discard when the canceled event surfaces.
func BenchmarkKernelCancel(b *testing.B) {
	k := NewKernel()
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := k.ScheduleAfter(1, fn)
		k.Cancel(e)
		k.PostAfter(2, fn)
		k.Step()
	}
}
