package sim

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// shardedTrace runs a little cross-shard ping workload and records the
// global execution order as "shard:time:tag" strings.
func shardedTrace(t *testing.T, shards int, parallel bool) []string {
	t.Helper()
	sk := NewShardedKernel(shards, 0.5, parallel)
	var mu sync.Mutex
	var log []string
	record := func(shard int, tag string) {
		mu.Lock()
		defer mu.Unlock()
		log = append(log, fmt.Sprintf("%d:%.3f:%s", shard, sk.Shard(shard).Now(), tag))
	}
	// Each shard runs a local periodic tick and sends a message to the
	// next shard at each tick, lookahead ahead.
	for s := 0; s < shards; s++ {
		s := s
		var tick func(n int)
		tick = func(n int) {
			record(s, fmt.Sprintf("tick%d", n))
			if n >= 4 {
				return
			}
			k := sk.Shard(s)
			dst := (s + 1) % shards
			at := k.Now() + sk.Lookahead()
			sk.Send(s, dst, at, 0, func() { record(dst, fmt.Sprintf("from%d@%d", s, n)) })
			k.ScheduleAfter(0.2, func() { tick(n + 1) })
		}
		sk.Shard(s).Schedule(0.1*float64(s+1), func() { tick(0) })
	}
	sk.Run(nil)
	return log
}

// TestShardedParallelMatchesSequential asserts the engine's core
// determinism property: goroutine-per-shard execution produces the
// exact same per-shard event sequence as sequential execution.
func TestShardedParallelMatchesSequential(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 4} {
		seq := shardedTrace(t, shards, false)
		par := shardedTrace(t, shards, true)
		// The global log interleaving may differ between parallel runs,
		// but each shard's subsequence must match exactly; with
		// sequential shard execution the whole log is deterministic, so
		// compare per-shard projections.
		byShard := func(log []string) map[byte][]string {
			m := map[byte][]string{}
			for _, l := range log {
				m[l[0]] = append(m[l[0]], l)
			}
			return m
		}
		sm, pm := byShard(seq), byShard(par)
		if len(sm) != len(pm) {
			t.Fatalf("shards=%d: shard sets differ: %v vs %v", shards, sm, pm)
		}
		for s, sl := range sm {
			pl := pm[s]
			if len(sl) != len(pl) {
				t.Fatalf("shards=%d shard %c: %d vs %d events\nseq: %v\npar: %v",
					shards, s, len(sl), len(pl), sl, pl)
			}
			for i := range sl {
				if sl[i] != pl[i] {
					t.Fatalf("shards=%d shard %c event %d: %q vs %q", shards, s, i, sl[i], pl[i])
				}
			}
		}
	}
}

// TestShardedSameShardSendIsLocal asserts same-shard sends schedule
// immediately (no barrier latency, no lookahead constraint).
func TestShardedSameShardSendIsLocal(t *testing.T) {
	sk := NewShardedKernel(2, 1.0, false)
	fired := false
	sk.Shard(0).Schedule(0.5, func() {
		sk.Send(0, 0, 0.6, 0, func() { fired = true })
	})
	sk.Run(nil)
	if !fired {
		t.Fatal("same-shard send did not fire")
	}
}

// TestShardedSendViolatingLookaheadPanics asserts the conservative rule
// is enforced: a cross-shard send closer than the lookahead panics.
func TestShardedSendViolatingLookaheadPanics(t *testing.T) {
	sk := NewShardedKernel(2, 1.0, false)
	sk.Shard(0).Schedule(0.5, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for send violating lookahead")
			}
		}()
		sk.Send(0, 1, 0.6, 0, func() {})
	})
	sk.Run(nil)
}

// TestShardedConservativeDelivery is the property test required by the
// sharded-engine issue: under randomized shard counts, lookaheads and
// send patterns, (a) no cross-shard event is ever delivered earlier
// than the sender's time plus the lookahead, and (b) window advancement
// is monotone.
func TestShardedConservativeDelivery(t *testing.T) {
	prop := func(seed int64, nShards uint8, lookMilli uint16, msgs uint8) bool {
		shards := int(nShards)%4 + 2   // 2..5
		look := float64(lookMilli%500+1) / 1000.0 // 1ms..500ms
		n := int(msgs)%32 + 8
		rng := rand.New(rand.NewSource(seed))

		sk := NewShardedKernel(shards, look, true)
		violated := false
		var prevStart, prevEnd float64 = -1, -1
		sk.WindowHook = func(start, end float64) {
			if start < prevStart || end < prevEnd || end <= start {
				violated = true
			}
			prevStart, prevEnd = start, end
		}
		var mu sync.Mutex
		// Seed each shard with a chain of random local events that fire
		// random cross-shard sends at exactly now+look (the minimum
		// conservative delay) or later.
		for s := 0; s < shards; s++ {
			s := s
			at := rng.Float64() * look * 3
			extra := make([]float64, n)
			dsts := make([]int, n)
			for i := range extra {
				extra[i] = rng.Float64() * look * 2
				dsts[i] = rng.Intn(shards)
			}
			i := 0
			var step func()
			step = func() {
				if i >= n {
					return
				}
				k := sk.Shard(s)
				sentAt := k.Now()
				deliverAt := sentAt + look + extra[i]
				dst := dsts[i]
				sk.Send(s, dst, deliverAt, 0, func() {
					// Delivered: the destination clock must be at the
					// scheduled time, never before sender time + lookahead.
					got := sk.Shard(dst).Now()
					if got < sentAt+look {
						mu.Lock()
						violated = true
						mu.Unlock()
					}
				})
				i++
				k.ScheduleAfter(0.1*look+extra[i%n]*0.5, step)
			}
			sk.Shard(s).Schedule(at, step)
		}
		sk.Run(nil)
		return !violated
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestShardedRaceStress hammers the parallel engine: many shards, many
// cross-shard messages per window, plus a shared sink mutated under a
// mutex the way the trace merge is. Run under -race this covers the
// sharded engine's concurrency (goroutine-per-shard windows, outbox
// append, barrier flush).
func TestShardedRaceStress(t *testing.T) {
	const shards = 8
	sk := NewShardedKernel(shards, 0.01, true)
	var mu sync.Mutex
	total := 0
	for s := 0; s < shards; s++ {
		s := s
		var step func(n int)
		step = func(n int) {
			mu.Lock()
			total++
			mu.Unlock()
			if n >= 200 {
				return
			}
			k := sk.Shard(s)
			for d := 0; d < shards; d++ {
				if d == s {
					continue
				}
				d := d
				sk.Send(s, d, k.Now()+0.01, 0, func() {
					mu.Lock()
					total++
					mu.Unlock()
				})
			}
			k.ScheduleAfter(0.004, func() { step(n + 1) })
		}
		sk.Shard(s).Schedule(0.001*float64(s+1), func() { step(0) })
	}
	sk.Run(nil)
	want := shards*201 + shards*200*(shards-1)
	if total != want {
		t.Fatalf("fired %d callbacks, want %d", total, want)
	}
	if sk.Windows() == 0 {
		t.Fatal("no windows executed")
	}
}

// TestShardedKernelFiredAndNow sanity-checks the aggregate accessors.
func TestShardedKernelFiredAndNow(t *testing.T) {
	sk := NewShardedKernel(2, 0.5, false)
	sk.Shard(0).Schedule(1.0, func() {})
	sk.Shard(1).Schedule(2.5, func() {})
	fired := sk.Run(nil)
	if fired != 2 || sk.Fired() != 2 {
		t.Fatalf("fired = %d / %d, want 2", fired, sk.Fired())
	}
	if sk.Now() != 2.5 {
		t.Fatalf("Now = %g, want 2.5", sk.Now())
	}
}

// BenchmarkShardedWindows measures the raw window machinery: 4 shards
// exchanging cross-shard messages every window, reporting windows/sec.
func BenchmarkShardedWindows(b *testing.B) {
	const shards = 4
	b.ReportAllocs()
	var windows uint64
	for i := 0; i < b.N; i++ {
		sk := NewShardedKernel(shards, 1e-3, true)
		for s := 0; s < shards; s++ {
			s := s
			var tick func()
			n := 0
			tick = func() {
				n++
				if n >= 1000 {
					return
				}
				now := sk.Shard(s).Now()
				sk.Send(s, (s+1)%shards, now+1e-3, 0, func() {})
				sk.Shard(s).Schedule(now+1e-3, tick)
			}
			sk.Shard(s).Schedule(0, tick)
		}
		sk.Run(nil)
		windows += sk.Windows()
	}
	b.ReportMetric(float64(windows)/b.Elapsed().Seconds(), "windows/sec")
}

// TestShardedRunContextExpired: an already-expired context must stop a
// sharded run before any window executes — zero events fired, queues
// intact — so daemon job deadlines take effect promptly.
func TestShardedRunContextExpired(t *testing.T) {
	sk := NewShardedKernel(2, 1e-3, false)
	var fired int
	sk.Shard(0).Schedule(0, func() { fired++ })
	sk.Shard(1).Schedule(0.5, func() { fired++ })
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	n, err := sk.RunContext(ctx, nil)
	if n != 0 || fired != 0 {
		t.Fatalf("expired context still fired %d events (returned %d)", fired, n)
	}
	if err == nil {
		t.Fatal("RunContext did not report the context error")
	}
	if sk.Shard(0).Pending() != 1 || sk.Shard(1).Pending() != 1 {
		t.Fatalf("queues disturbed: %d, %d pending", sk.Shard(0).Pending(), sk.Shard(1).Pending())
	}
	// The same run resumes cleanly once cancellation is lifted.
	n, err = sk.RunContext(context.Background(), nil)
	if err != nil || n != 2 || fired != 2 {
		t.Fatalf("resume: n=%d fired=%d err=%v", n, fired, err)
	}
}

// TestShardedRunContextMidRun cancels during the run via a WindowHook
// and checks the run halts at a window boundary with events left.
func TestShardedRunContextMidRun(t *testing.T) {
	sk := NewShardedKernel(2, 1e-3, false)
	for s := 0; s < 2; s++ {
		k := sk.Shard(s)
		var tick func()
		n := 0
		tick = func() {
			n++
			if n < 100 {
				k.ScheduleAfter(1e-3, tick)
			}
		}
		k.Schedule(0, tick)
	}
	ctx, cancel := context.WithCancel(context.Background())
	windows := 0
	sk.WindowHook = func(start, end Time) {
		windows++
		if windows == 5 {
			cancel()
		}
	}
	_, err := sk.RunContext(ctx, nil)
	if err == nil {
		t.Fatal("cancellation not reported")
	}
	if windows > 6 {
		t.Fatalf("ran %d windows after cancellation at window 5", windows)
	}
	if sk.Shard(0).Pending() == 0 && sk.Shard(1).Pending() == 0 {
		t.Fatal("run completed despite cancellation")
	}
}
