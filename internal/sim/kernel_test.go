package sim

import (
	"testing"
)

func TestKernelFiresInTimeOrder(t *testing.T) {
	k := NewKernel()
	var got []int
	k.Schedule(3.0, func() { got = append(got, 3) })
	k.Schedule(1.0, func() { got = append(got, 1) })
	k.Schedule(2.0, func() { got = append(got, 2) })
	k.Run(nil)
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fire order %v, want %v", got, want)
		}
	}
	if k.Now() != 3.0 {
		t.Fatalf("clock at %v, want 3.0", k.Now())
	}
}

func TestKernelTieBreakBySeq(t *testing.T) {
	k := NewKernel()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(1.0, func() { got = append(got, i) })
	}
	k.Run(nil)
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-time events fired out of insertion order: %v", got)
		}
	}
}

func TestKernelTieBreakByPriority(t *testing.T) {
	k := NewKernel()
	var got []int
	k.SchedulePrio(1.0, 5, func() { got = append(got, 5) })
	k.SchedulePrio(1.0, 1, func() { got = append(got, 1) })
	k.SchedulePrio(1.0, 3, func() { got = append(got, 3) })
	k.Run(nil)
	want := []int{1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("priority order %v, want %v", got, want)
		}
	}
}

func TestKernelCancel(t *testing.T) {
	k := NewKernel()
	fired := false
	e := k.Schedule(1.0, func() { fired = true })
	k.Cancel(e)
	k.Run(nil)
	if fired {
		t.Fatal("canceled event fired")
	}
	if !e.Canceled() {
		t.Fatal("event not marked canceled")
	}
	// Cancelling nil and double-cancel are no-ops.
	k.Cancel(nil)
	k.Cancel(e)
}

func TestKernelScheduleDuringEvent(t *testing.T) {
	k := NewKernel()
	var order []string
	k.Schedule(1.0, func() {
		order = append(order, "first")
		k.ScheduleAfter(0.5, func() { order = append(order, "second") })
	})
	k.Run(nil)
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Fatalf("nested scheduling order %v", order)
	}
	if k.Now() != 1.5 {
		t.Fatalf("clock %v, want 1.5", k.Now())
	}
}

func TestKernelSchedulePastPanics(t *testing.T) {
	k := NewKernel()
	k.Schedule(5.0, func() {})
	k.Run(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	k.Schedule(1.0, func() {})
}

func TestKernelScheduleNilFuncPanics(t *testing.T) {
	k := NewKernel()
	defer func() {
		if recover() == nil {
			t.Fatal("nil func did not panic")
		}
	}()
	k.Schedule(1.0, nil)
}

func TestKernelRunUntil(t *testing.T) {
	k := NewKernel()
	var fired []float64
	for _, at := range []float64{1, 2, 3, 4} {
		at := at
		k.Schedule(at, func() { fired = append(fired, at) })
	}
	k.RunUntil(2.5)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 1 and 2", fired)
	}
	if k.Now() != 2.5 {
		t.Fatalf("clock %v, want 2.5", k.Now())
	}
	k.Run(nil)
	if len(fired) != 4 {
		t.Fatalf("remaining events lost: %v", fired)
	}
}

func TestKernelRunUntilAdvancesIdleClock(t *testing.T) {
	k := NewKernel()
	k.RunUntil(10)
	if k.Now() != 10 {
		t.Fatalf("idle clock %v, want 10", k.Now())
	}
}

func TestKernelStop(t *testing.T) {
	k := NewKernel()
	count := 0
	for i := 1; i <= 100; i++ {
		k.Schedule(float64(i), func() { count++ })
	}
	k.Run(func() bool { return count >= 10 })
	if count != 10 {
		t.Fatalf("stop predicate ignored: fired %d", count)
	}
}

func TestKernelMaxEventsPanics(t *testing.T) {
	k := NewKernel()
	k.MaxEvents = 5
	var loop func()
	loop = func() { k.ScheduleAfter(1, loop) }
	k.ScheduleAfter(1, loop)
	defer func() {
		if recover() == nil {
			t.Fatal("runaway simulation did not panic")
		}
	}()
	k.Run(nil)
}

func TestKernelStepEmpty(t *testing.T) {
	k := NewKernel()
	if k.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestEventAccessors(t *testing.T) {
	k := NewKernel()
	e := k.Schedule(2.5, func() {})
	if e.At() != 2.5 {
		t.Fatalf("At %v", e.At())
	}
	if !e.Pending() {
		t.Fatal("queued event not pending")
	}
	k.Run(nil)
	if e.Pending() {
		t.Fatal("fired event still pending")
	}
	if k.Fired() != 1 {
		t.Fatalf("Fired %d, want 1", k.Fired())
	}
}

func TestKernelManyEventsHeapStress(t *testing.T) {
	k := NewKernel()
	rng := NewRNG(99)
	n := 5000
	var last float64 = -1
	bad := false
	for i := 0; i < n; i++ {
		at := rng.Float64() * 100
		k.Schedule(at, func() {
			if k.Now() < last {
				bad = true
			}
			last = k.Now()
		})
	}
	k.Run(nil)
	if bad {
		t.Fatal("clock went backwards")
	}
	if k.Fired() != uint64(n) {
		t.Fatalf("fired %d of %d", k.Fired(), n)
	}
}

func TestKernelCancelInterleaved(t *testing.T) {
	k := NewKernel()
	rng := NewRNG(7)
	events := make([]*Event, 0, 1000)
	fired := 0
	for i := 0; i < 1000; i++ {
		events = append(events, k.Schedule(rng.Float64()*10, func() { fired++ }))
	}
	canceled := 0
	for i := 0; i < 1000; i += 3 {
		k.Cancel(events[i])
		canceled++
	}
	k.Run(nil)
	if fired != 1000-canceled {
		t.Fatalf("fired %d, want %d", fired, 1000-canceled)
	}
}
