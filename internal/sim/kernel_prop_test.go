package sim

import (
	"math/rand"
	"testing"
)

// TestKernelFiringOrderProperty drives the kernel with random
// schedule/post/cancel/reschedule sequences and checks the ordering
// contract against a model: events fire in nondecreasing time, ties
// break by (priority, insertion seq), canceled events never fire, and
// nothing is lost or duplicated. Runs under -race in CI (make race).
func TestKernelFiringOrderProperty(t *testing.T) {
	type expect struct {
		at   float64
		prio int
		seq  int // model-side insertion counter
		// schedAfter is how many events had fired when this one was
		// scheduled: tie-break ordering is only a contract between
		// events pending in the queue together.
		schedAfter int
	}
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		k := NewKernel()

		var fired []expect
		live := map[int]*Event{} // model seq -> cancellable handle
		model := map[int]expect{}
		mustNotFire := map[int]bool{} // canceled while still pending
		nextSeq := 0

		cancelOne := func() {
			for seq, h := range live {
				if h.Pending() {
					mustNotFire[seq] = true
				}
				k.Cancel(h)
				delete(model, seq)
				delete(live, seq)
				return
			}
		}

		schedule := func(at float64, prio int, pooled bool) {
			seq := nextSeq
			nextSeq++
			e := expect{at: at, prio: prio, seq: seq, schedAfter: len(fired)}
			model[seq] = e
			fn := func() { fired = append(fired, e) }
			if pooled {
				switch {
				case prio != 0:
					k.PostPrio(at, prio, fn)
				case rng.Intn(2) == 0:
					k.Post(at, fn)
				default:
					k.PostAfter(at-k.Now(), fn)
				}
				return
			}
			var h *Event
			if prio != 0 {
				h = k.SchedulePrio(at, prio, fn)
			} else if rng.Intn(2) == 0 {
				h = k.Schedule(at, fn)
			} else {
				h = k.ScheduleAfter(at-k.Now(), fn)
			}
			live[seq] = h
		}

		ops := 300 + rng.Intn(300)
		for op := 0; op < ops; op++ {
			switch r := rng.Float64(); {
			case r < 0.45: // schedule at a random future (or present) time
				at := k.Now() + float64(rng.Intn(20))*0.5
				schedule(at, rng.Intn(5)-2, rng.Intn(2) == 0)
			case r < 0.6: // cancel a random live handle
				cancelOne()
			case r < 0.7: // reschedule: cancel + schedule a replacement
				cancelOne()
				schedule(k.Now()+float64(rng.Intn(10)), rng.Intn(3)-1, false)
			default: // fire a few events
				for i := 0; i < 1+rng.Intn(4); i++ {
					if !k.Step() {
						break
					}
				}
			}
		}
		for k.Step() {
		}

		// Every surviving model event fired exactly once; an event
		// canceled while pending never fired; nothing fired twice. (An
		// already-fired event may be "canceled" afterwards — the
		// documented no-op — which removes it from the model but must
		// not un-fire it, hence the three separate checks.)
		seen := map[int]int{}
		for _, f := range fired {
			seen[f.seq]++
		}
		for seq := range model {
			if seen[seq] != 1 {
				t.Fatalf("trial %d: event seq %d fired %d times, want 1", trial, seq, seen[seq])
			}
		}
		for seq := range mustNotFire {
			if seen[seq] != 0 {
				t.Fatalf("trial %d: canceled event seq %d fired", trial, seq)
			}
		}
		for seq, n := range seen {
			if n > 1 {
				t.Fatalf("trial %d: event seq %d fired %d times", trial, seq, n)
			}
		}

		// Firing order: nondecreasing time always; among events that
		// were pending together (b scheduled before a fired), same-time
		// ties ordered by (priority, insertion seq).
		for i := 1; i < len(fired); i++ {
			a, b := fired[i-1], fired[i]
			if b.at < a.at {
				t.Fatalf("trial %d: time went backwards: %v after %v", trial, b, a)
			}
			if b.at == a.at && b.schedAfter < i {
				if b.prio < a.prio || (b.prio == a.prio && b.seq < a.seq) {
					t.Fatalf("trial %d: tie-break violated: %v fired after %v", trial, b, a)
				}
			}
		}
	}
}

// TestKernelPoolReuseKeepsOrdering stresses the pooled Post path mixed
// with cancels so recycled Event structs are continually reused, and
// asserts the (time, priority, seq) order is unaffected by reuse.
func TestKernelPoolReuseKeepsOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	k := NewKernel()
	var fired []float64
	for round := 0; round < 200; round++ {
		n := 1 + rng.Intn(8)
		for i := 0; i < n; i++ {
			at := k.Now() + rng.Float64()*3
			k.Post(at, func() { fired = append(fired, k.Now()) })
		}
		if rng.Intn(3) == 0 {
			h := k.ScheduleAfter(rng.Float64(), func() { fired = append(fired, k.Now()) })
			if rng.Intn(2) == 0 {
				k.Cancel(h)
			}
		}
		for i := 0; i < rng.Intn(6); i++ {
			if !k.Step() {
				break
			}
		}
	}
	for k.Step() {
	}
	for i := 1; i < len(fired); i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("fire times went backwards: %g after %g", fired[i], fired[i-1])
		}
	}
	if k.EventAllocs() == 0 {
		t.Fatal("expected some heap-allocated events")
	}
	if k.EventAllocs() >= k.Fired() {
		t.Fatalf("pool never reused: %d allocs for %d fired", k.EventAllocs(), k.Fired())
	}
}
