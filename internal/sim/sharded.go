package sim

import (
	"context"
	"fmt"
	"sort"
	"sync"
)

// ShardedKernel runs one simulation partitioned across several event
// kernels ("shards") under conservative synchronization. All shards
// advance in lockstep windows [t0, t0+L) where t0 is the global minimum
// next-event time and L is the lookahead — the minimum latency any
// cross-shard interaction can have. Within a window every shard may
// execute independently (in parallel or sequentially, identically):
// an event at time t < t0+L can only produce cross-shard effects at
// t+L >= t0+L, i.e. in a later window. Cross-shard messages are
// buffered per source shard during the window and delivered at the
// window barrier in a deterministic global order, so the engine's
// results are byte-identical whatever the shard goroutine interleaving.
//
// The determinism contract is conditional on the model: shards must
// share no mutable state and no RNG stream, and every cross-shard
// interaction must go through Send with a delay of at least the
// lookahead. Under those conditions an N-shard run executes exactly
// the events a 1-shard run of the same per-shard model would, in an
// order that preserves each shard's internal (time, priority, seq)
// sequence.
type ShardedKernel struct {
	shards    []*Kernel
	lookahead Time
	parallel  bool

	// outbox[src] buffers cross-shard messages sent while shard src
	// executes a window. Only shard src's goroutine appends to
	// outbox[src], so the slices need no locking; the barrier drains
	// them single-threaded.
	outbox [][]xmsg

	// windowEnd is the end of the window currently executing; it is
	// written only between windows, so in-window readers (Send's
	// conservative assertion) race with nothing.
	windowEnd Time
	windows   uint64

	// MaxEvents caps the total events fired across all shards in one
	// Run (0 = no cap), mirroring Kernel.MaxEvents for the whole
	// partitioned simulation.
	MaxEvents uint64

	// WindowHook, when non-nil, is called at the start of every window
	// with its bounds — single-threaded, between windows. Tests use it
	// to observe window advancement.
	WindowHook func(start, end Time)
}

// xmsg is one buffered cross-shard message.
type xmsg struct {
	src  int
	dst  int
	at   Time
	prio int
	seq  int // append order within the source shard's window outbox
	fn   func()
}

// NewShardedKernel creates n fresh kernels coupled by the given
// lookahead (seconds; must be positive — a zero lookahead admits no
// conservative window). parallel selects goroutine-per-shard window
// execution; false runs shards sequentially, with identical results.
func NewShardedKernel(n int, lookahead Time, parallel bool) *ShardedKernel {
	if n < 1 {
		panic(fmt.Sprintf("sim: sharded kernel needs >= 1 shard, got %d", n))
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: sharded kernel lookahead %g must be positive", lookahead))
	}
	sk := &ShardedKernel{
		shards:    make([]*Kernel, n),
		lookahead: lookahead,
		parallel:  parallel,
		outbox:    make([][]xmsg, n),
	}
	for i := range sk.shards {
		sk.shards[i] = NewKernel()
	}
	return sk
}

// NumShards returns the shard count.
func (sk *ShardedKernel) NumShards() int { return len(sk.shards) }

// Shard returns shard i's kernel. All model state owned by shard i must
// schedule exclusively on this kernel.
func (sk *ShardedKernel) Shard(i int) *Kernel { return sk.shards[i] }

// Lookahead returns the conservative window length in seconds.
func (sk *ShardedKernel) Lookahead() Time { return sk.lookahead }

// Windows returns how many synchronization windows have executed.
func (sk *ShardedKernel) Windows() uint64 { return sk.windows }

// Fired returns the total events fired across all shards.
func (sk *ShardedKernel) Fired() uint64 {
	var n uint64
	for _, k := range sk.shards {
		n += k.Fired()
	}
	return n
}

// EventAllocs returns the total kernel Event allocations across shards.
func (sk *ShardedKernel) EventAllocs() uint64 {
	var n uint64
	for _, k := range sk.shards {
		n += k.EventAllocs()
	}
	return n
}

// Now returns the global simulation time: the maximum shard clock. The
// set of executed events is shard-count invariant, so this matches the
// final clock of an equivalent single-shard run.
func (sk *ShardedKernel) Now() Time {
	var t Time
	for _, k := range sk.shards {
		if n := k.Now(); n > t {
			t = n
		}
	}
	return t
}

// Send schedules fn on shard dst at absolute time at, from shard src.
// Calls during a window must come from shard src's own goroutine (that
// is the no-lock contract on the outbox) and must respect the
// conservative rule: at >= src's current time + lookahead. Delivery
// happens at the next window barrier, in deterministic
// (at, priority, source shard, send order) order, so the destination
// kernel assigns sequence numbers identically on every run.
// Same-shard sends schedule directly.
func (sk *ShardedKernel) Send(src, dst int, at Time, prio int, fn func()) {
	if dst < 0 || dst >= len(sk.shards) {
		panic(fmt.Sprintf("sim: Send to shard %d of %d", dst, len(sk.shards)))
	}
	if src == dst {
		sk.shards[src].SchedulePrio(at, prio, fn)
		return
	}
	if min := sk.shards[src].Now() + sk.lookahead; at < min {
		panic(fmt.Sprintf("sim: cross-shard send at %.9f violates lookahead (now %.9f + %g)",
			at, sk.shards[src].Now(), sk.lookahead))
	}
	sk.outbox[src] = append(sk.outbox[src], xmsg{
		src: src, dst: dst, at: at, prio: prio, seq: len(sk.outbox[src]), fn: fn,
	})
}

// flush delivers all buffered cross-shard messages in deterministic
// global order. Sorting by (at, priority, source shard, send order)
// fixes the destination kernels' sequence assignment independent of
// shard scheduling.
func (sk *ShardedKernel) flush() {
	var all []xmsg
	for src := range sk.outbox {
		all = append(all, sk.outbox[src]...)
		sk.outbox[src] = sk.outbox[src][:0]
	}
	if len(all) == 0 {
		return
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.prio != b.prio {
			return a.prio < b.prio
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.seq < b.seq
	})
	for _, m := range all {
		sk.shards[m.dst].SchedulePrio(m.at, m.prio, m.fn)
	}
}

// Run advances windows until every shard's queue drains or stop returns
// true. stop is evaluated only at window boundaries — between windows
// the simulation state is globally consistent, mid-window it is not.
// It returns the total events fired.
func (sk *ShardedKernel) Run(stop func() bool) uint64 {
	start := sk.Fired()
	for {
		if stop != nil && stop() {
			break
		}
		if sk.MaxEvents > 0 && sk.Fired()-start >= sk.MaxEvents {
			panic(fmt.Sprintf("sim: sharded run exceeded MaxEvents=%d (runaway simulation?)", sk.MaxEvents))
		}
		t0 := Forever
		for _, k := range sk.shards {
			if at, ok := k.NextAt(); ok && at < t0 {
				t0 = at
			}
		}
		if t0 == Forever {
			break
		}
		end := t0 + sk.lookahead
		if sk.WindowHook != nil {
			sk.WindowHook(t0, end)
		}
		sk.windowEnd = end
		sk.windows++
		sk.runWindow(end)
		sk.flush()
	}
	return sk.Fired() - start
}

// RunContext is Run with context cancellation threaded through the
// window boundaries: the context is polled alongside stop before each
// window, so a daemon job deadline interrupts a sharded run at the next
// globally-consistent point — without stop-function plumbing at every
// call site. An already-expired context fires no events at all. Returns
// the events fired and ctx.Err() if cancellation (not drain or stop)
// ended the run.
func (sk *ShardedKernel) RunContext(ctx context.Context, stop func() bool) (uint64, error) {
	if ctx == nil {
		return sk.Run(stop), nil
	}
	n := sk.Run(func() bool {
		select {
		case <-ctx.Done():
			return true
		default:
		}
		return stop != nil && stop()
	})
	return n, ctx.Err()
}

// runWindow executes one window on every shard: concurrently when the
// engine is parallel, in shard order otherwise. The two modes execute
// the exact same per-shard event sequences — shards share nothing
// within a window — so results are identical.
func (sk *ShardedKernel) runWindow(end Time) {
	if !sk.parallel || len(sk.shards) == 1 {
		for _, k := range sk.shards {
			k.RunBefore(end)
		}
		return
	}
	panics := make([]any, len(sk.shards))
	var wg sync.WaitGroup
	for i := range sk.shards {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { panics[i] = recover() }()
			sk.shards[i].RunBefore(end)
		}()
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
}
