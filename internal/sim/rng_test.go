package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRNGStreamsIndependent(t *testing.T) {
	parent := NewRNG(42)
	s1 := parent.Stream("alpha")
	s2 := parent.Stream("beta")
	same := 0
	for i := 0; i < 100; i++ {
		if s1.Float64() == s2.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams alpha/beta nearly identical (%d matches)", same)
	}
}

func TestRNGStreamStableAcrossOrder(t *testing.T) {
	// Deriving streams in a different order must not change their
	// sequences — this is what keeps runs reproducible when model
	// components are constructed in different orders.
	p1 := NewRNG(42)
	a1 := p1.Stream("a").Float64()
	_ = p1.Stream("b")

	p2 := NewRNG(42)
	_ = p2.Stream("b")
	a2 := p2.Stream("a").Float64()
	if a1 != a2 {
		t.Fatal("stream sequence depends on derivation order")
	}
}

func TestJitterBounds(t *testing.T) {
	r := NewRNG(1)
	err := quick.Check(func(fracRaw float64) bool {
		frac := math.Mod(math.Abs(fracRaw), 1)
		j := r.Jitter(frac)
		return j >= 1-frac-1e-12 && j <= 1+frac+1e-12
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestJitterDegenerate(t *testing.T) {
	r := NewRNG(1)
	if r.Jitter(0) != 1 {
		t.Fatal("zero jitter must be identity")
	}
	if r.Jitter(-5) != 1 {
		t.Fatal("negative jitter must be identity")
	}
	j := r.Jitter(3) // clamped below 1
	if j <= 0 || j >= 2 {
		t.Fatalf("clamped jitter out of range: %v", j)
	}
}

func TestExpoMean(t *testing.T) {
	r := NewRNG(2)
	n := 20000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Expo(3.0)
	}
	mean := sum / float64(n)
	if mean < 2.8 || mean > 3.2 {
		t.Fatalf("exponential mean %v, want ~3.0", mean)
	}
	if r.Expo(0) != 0 || r.Expo(-1) != 0 {
		t.Fatal("non-positive mean must return 0")
	}
}

func TestLogNormalFactorMedian(t *testing.T) {
	r := NewRNG(3)
	n := 20001
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = r.LogNormalFactor(0.3)
	}
	// Median of a median-1 lognormal is ~1.
	count := 0
	for _, s := range samples {
		if s < 1 {
			count++
		}
	}
	frac := float64(count) / float64(n)
	if frac < 0.47 || frac > 0.53 {
		t.Fatalf("lognormal median off: %.3f below 1", frac)
	}
	if r.LogNormalFactor(0) != 1 {
		t.Fatal("zero sigma must be identity")
	}
}

func TestRNGSeedAccessor(t *testing.T) {
	if NewRNG(77).Seed() != 77 {
		t.Fatal("seed accessor")
	}
}
