package sim

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// RNG wraps a seeded math/rand source so every model component can own an
// independent, named random stream. Two RNGs derived from the same parent
// seed and name always produce the same sequence, which keeps runs
// reproducible even when components are constructed in different orders.
type RNG struct {
	*rand.Rand
	seed int64
}

// NewRNG returns a deterministic stream for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{Rand: rand.New(rand.NewSource(seed)), seed: seed}
}

// Seed returns the seed this stream was created with.
func (r *RNG) Seed() int64 { return r.seed }

// Stream derives an independent child stream identified by name. The
// child's seed is a stable hash of (parent seed, name), so adding a new
// stream never perturbs existing ones.
func (r *RNG) Stream(name string) *RNG {
	h := fnv.New64a()
	var buf [8]byte
	s := uint64(r.seed)
	for i := 0; i < 8; i++ {
		buf[i] = byte(s >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(name))
	return NewRNG(int64(h.Sum64()))
}

// Jitter returns a multiplicative factor uniform in [1-frac, 1+frac].
// frac outside [0,1) is clamped. Useful for perturbing service times.
func (r *RNG) Jitter(frac float64) float64 {
	if frac <= 0 {
		return 1
	}
	if frac >= 1 {
		frac = 0.999
	}
	return 1 - frac + 2*frac*r.Float64()
}

// Expo returns an exponentially distributed sample with the given mean.
func (r *RNG) Expo(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return r.ExpFloat64() * mean
}

// LogNormalFactor returns a multiplicative noise factor with median 1 and
// the given sigma (log-space std dev). Heavy-ish upper tail, matching the
// skew of real compute/transfer time noise.
func (r *RNG) LogNormalFactor(sigma float64) float64 {
	if sigma <= 0 {
		return 1
	}
	return math.Exp(r.NormFloat64() * sigma)
}
