// Package flownet is an analytic flow-level network model: active
// transfers are fluid flows with a byte demand, and link bandwidth is
// shared by weighted progressive-filling max-min fairness with strict
// priority bands at each flow's source egress — the same allocation the
// chunk fabric's HTB/prio qdiscs converge to under sustained load, but
// computed in closed form. Rates change only on flow arrival, departure,
// priority change or link fault, so a simulation kernel can jump
// straight to the next flow completion instead of pumping per-chunk
// events. CASSINI (arXiv 2308.00852) and Wang et al. (arXiv 2002.10105)
// evaluate placement and interleaving decisions on exactly this kind of
// fluid bandwidth-sharing model.
package flownet

import "math"

// Flow is one transfer demand presented to the solver.
type Flow struct {
	// Links are the IDs of the capacity-constrained links the flow
	// crosses, in path order. A flow with no links is degenerate and is
	// allocated zero rate.
	Links []int
	// Weight scales the flow's fair share on every link it crosses.
	// The fabric maps the per-flow socket window here: under backlogged
	// FIFO service a flow's throughput is proportional to its window,
	// which is the chunk fabric's source of persistent TCP unfairness.
	// Non-positive weights are treated as 1.
	Weight float64
	// Band is the flow's strict-priority band at BandLink; lower values
	// are served first (TensorLights green = 0, yellow = 1, ...).
	Band int
	// BandLink is the link at which Band competes — the source egress
	// in the fabric mapping, where tc installs the qdisc. Every flow
	// crossing an egress originates at that host, so priority applies
	// exactly where HTB enforces it; core and ingress links are
	// single-band FIFO in the chunk fabric and stay band-free here.
	// BandLink < 0 disables priority gating for the flow.
	BandLink int
}

// satEps is the absolute saturation slack in bytes/sec: residual
// capacities at or below cap*1e-9 + satEps count as saturated, which
// absorbs the floating-point residue of the filling arithmetic.
const satEps = 1e-6

// Solver computes max-min fair rates. The zero value is ready to use;
// reusing one Solver across calls reuses its scratch arrays, so
// steady-state solves allocate nothing.
type Solver struct {
	capRem  []float64
	wsum    []float64
	minBand []int64
	stamp   []uint64
	epoch   uint64
	touched []int
	frozen  []bool
	elig    []bool

	// Rounds counts progressive-filling iterations across all Solve
	// calls (each round freezes at least one flow), for diagnostics.
	Rounds uint64
}

// grow sizes the per-link scratch to cover link IDs [0, n).
func (s *Solver) grow(n int) {
	if len(s.capRem) >= n {
		return
	}
	s.capRem = append(s.capRem, make([]float64, n-len(s.capRem))...)
	s.wsum = append(s.wsum, make([]float64, n-len(s.wsum))...)
	s.minBand = append(s.minBand, make([]int64, n-len(s.minBand))...)
	s.stamp = append(s.stamp, make([]uint64, n-len(s.stamp))...)
}

// touch initializes link l's residual capacity once per solve.
func (s *Solver) touch(l int, caps []float64) {
	if s.stamp[l] == s.epoch {
		return
	}
	s.stamp[l] = s.epoch
	c := caps[l]
	if c < 0 {
		c = 0
	}
	s.capRem[l] = c
	s.touched = append(s.touched, l)
}

// saturated reports whether link l has no meaningful residual capacity.
func (s *Solver) saturated(l int, caps []float64) bool {
	return s.capRem[l] <= caps[l]*1e-9+satEps
}

// Solve computes the weighted priority max-min allocation. caps[l] is
// link l's capacity (bytes/sec; <= 0 means down). Flows reference links
// by index into caps. The result is written into rates (grown as
// needed) and returned; rates[i] is flow i's allocation.
//
// Progressive filling with strict priority: a flow is eligible when no
// unfrozen flow with a lower band shares its BandLink. All eligible
// flows grow together, each at ds*Weight, until some link saturates;
// flows crossing a saturated link freeze at their current rate. When
// every flow gated behind a band has frozen, the next band becomes
// eligible and fills the residual capacity — matching HTB's
// work-conserving borrowing: green saturates first, yellow gets what is
// left. Each round freezes at least one flow, so the loop runs at most
// len(flows) rounds. The solution touches only links some flow crosses,
// so cost is independent of the total link count.
//
// Guarantees (the property-test contract):
//   - per link, the sum of allocated rates never exceeds its capacity;
//   - every flow with at least one link ends frozen against a saturated
//     link (its bottleneck) — no flow could be sped up without reducing
//     a flow of equal or lower band;
//   - the allocation is deterministic in the input order.
func (s *Solver) Solve(caps []float64, flows []Flow, rates []float64) []float64 {
	n := len(flows)
	if cap(rates) < n {
		rates = make([]float64, n)
	}
	rates = rates[:n]
	s.grow(len(caps))
	s.epoch++
	s.touched = s.touched[:0]
	if cap(s.frozen) < n {
		s.frozen = make([]bool, n)
		s.elig = make([]bool, n)
	}
	s.frozen = s.frozen[:n]
	s.elig = s.elig[:n]

	active := 0
	for i := range flows {
		rates[i] = 0
		fl := &flows[i]
		if len(fl.Links) == 0 {
			s.frozen[i] = true
			continue
		}
		s.frozen[i] = false
		active++
		for _, l := range fl.Links {
			s.touch(l, caps)
		}
		if fl.BandLink >= 0 {
			s.touch(fl.BandLink, caps)
		}
	}

	for active > 0 {
		s.Rounds++
		// Lowest unfrozen band per band link gates eligibility.
		for _, l := range s.touched {
			s.minBand[l] = math.MaxInt64
		}
		for i := range flows {
			if s.frozen[i] {
				continue
			}
			fl := &flows[i]
			if fl.BandLink >= 0 && int64(fl.Band) < s.minBand[fl.BandLink] {
				s.minBand[fl.BandLink] = int64(fl.Band)
			}
		}
		// Weight pressure per link from the eligible set.
		for _, l := range s.touched {
			s.wsum[l] = 0
		}
		for i := range flows {
			fl := &flows[i]
			el := !s.frozen[i] &&
				(fl.BandLink < 0 || int64(fl.Band) == s.minBand[fl.BandLink])
			s.elig[i] = el
			if !el {
				continue
			}
			w := fl.Weight
			if w <= 0 {
				w = 1
			}
			for _, l := range fl.Links {
				s.wsum[l] += w
			}
		}
		// The common fill increment is limited by the tightest link.
		ds := math.MaxFloat64
		bottleneck := -1
		for _, l := range s.touched {
			if s.wsum[l] <= 0 {
				continue
			}
			if d := s.capRem[l] / s.wsum[l]; d < ds {
				ds = d
				bottleneck = l
			}
		}
		if bottleneck < 0 {
			// No eligible flow crosses any link. Unreachable when the
			// eligible set is nonempty (every active flow has links);
			// freeze the remainder defensively rather than spin.
			for i := range flows {
				if !s.frozen[i] {
					s.frozen[i] = true
					active--
				}
			}
			break
		}
		if ds < 0 {
			ds = 0
		}
		for i := range flows {
			if !s.elig[i] {
				continue
			}
			w := flows[i].Weight
			if w <= 0 {
				w = 1
			}
			rates[i] += w * ds
		}
		for _, l := range s.touched {
			if s.wsum[l] > 0 {
				s.capRem[l] -= s.wsum[l] * ds
			}
		}
		// Freeze the eligible flows that hit a saturated link.
		froze := 0
		for i := range flows {
			if !s.elig[i] {
				continue
			}
			for _, l := range flows[i].Links {
				if s.saturated(l, caps) {
					s.frozen[i] = true
					active--
					froze++
					break
				}
			}
		}
		if froze == 0 {
			// Floating-point slack left the bottleneck marginally above
			// the saturation threshold; freeze its flows directly so
			// every round retires at least one.
			for i := range flows {
				if !s.elig[i] {
					continue
				}
				for _, l := range flows[i].Links {
					if l == bottleneck {
						s.frozen[i] = true
						active--
						froze++
						break
					}
				}
			}
		}
		if froze == 0 {
			for i := range flows {
				if s.elig[i] {
					s.frozen[i] = true
					active--
				}
			}
		}
	}
	return rates
}

// Solve is the convenience entry point for one-shot solves (tests,
// tools); hot paths should hold a Solver to reuse its scratch.
func Solve(caps []float64, flows []Flow) []float64 {
	var s Solver
	return s.Solve(caps, flows, nil)
}
