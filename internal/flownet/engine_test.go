package flownet

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/sim"
)

type doneRec struct {
	id FlowID
	at float64
}

type engineHarness struct {
	k    *sim.Kernel
	e    *Engine
	done []doneRec
}

func newHarness() *engineHarness {
	h := &engineHarness{k: sim.NewKernel()}
	h.e = NewEngine(h.k, func(id FlowID, tag any) {
		h.done = append(h.done, doneRec{id: id, at: h.k.Now()})
	})
	return h
}

func (h *engineHarness) run(t *testing.T) {
	t.Helper()
	h.k.Run(nil)
}

func (h *engineHarness) doneAt(t *testing.T, id FlowID) float64 {
	t.Helper()
	for _, d := range h.done {
		if d.id == id {
			return d.at
		}
	}
	t.Fatalf("flow %d never completed; done=%v", id, h.done)
	return 0
}

func TestEngineSingleFlowCompletion(t *testing.T) {
	h := newHarness()
	l := h.e.AddLink(100)
	h.e.AddFlow(1, []int{l}, -1, 0, 1, 1000, nil)
	h.run(t)
	approx(t, h.doneAt(t, 1), 10, 1e-9, "lone flow completion")
	approx(t, h.e.LinkServedBytes(l), 1000, completionEps+1e-6, "served bytes")
	approx(t, h.e.LinkBusySeconds(l), 10, 1e-6, "busy seconds")
	if h.e.ActiveFlows() != 0 {
		t.Fatalf("flows left active: %d", h.e.ActiveFlows())
	}
}

// Staggered sharing: f1 runs alone for 5s at 100 B/s, then shares at
// 50 B/s until it finishes at t=15; f2 then speeds back up and finishes
// at t=20. The textbook processor-sharing trajectory.
func TestEngineStaggeredSharing(t *testing.T) {
	h := newHarness()
	l := h.e.AddLink(100)
	h.e.AddFlow(1, []int{l}, -1, 0, 1, 1000, nil)
	h.k.Post(5, func() {
		h.e.AddFlow(2, []int{l}, -1, 0, 1, 1000, nil)
	})
	h.run(t)
	approx(t, h.doneAt(t, 1), 15, 1e-9, "first flow")
	approx(t, h.doneAt(t, 2), 20, 1e-9, "second flow")
}

// Priority preemption mid-flight: a yellow flow has the link until a
// green flow arrives and freezes it; when the green finishes the yellow
// resumes with its remaining demand intact.
func TestEnginePriorityPreemption(t *testing.T) {
	h := newHarness()
	l := h.e.AddLink(100)
	h.e.AddFlow(1, []int{l}, l, 1, 1, 1000, nil) // yellow
	h.k.Post(5, func() {
		h.e.AddFlow(2, []int{l}, l, 0, 1, 500, nil) // green
	})
	h.run(t)
	// Yellow serves 500 by t=5, stalls 5s while green runs, then
	// finishes its remaining 500: t = 5 + 5 + 5 = 15.
	approx(t, h.doneAt(t, 2), 10, 1e-9, "green flow")
	approx(t, h.doneAt(t, 1), 15, 1e-9, "yellow flow")
}

// Link fault mid-flight: capacity drops to zero (detach), the flow
// stalls, capacity returns scaled (degrade) and the flow finishes late
// by exactly the analytic amount.
func TestEngineLinkFaultRecompute(t *testing.T) {
	h := newHarness()
	l := h.e.AddLink(100)
	h.e.AddFlow(1, []int{l}, -1, 0, 1, 1000, nil)
	h.k.Post(2, func() { h.e.SetLinkCap(l, 0) })
	h.k.Post(6, func() { h.e.SetLinkCap(l, 50) })
	h.run(t)
	// 200 bytes by t=2, stalled to t=6, remaining 800 at 50 B/s → t=22.
	approx(t, h.doneAt(t, 1), 22, 1e-9, "faulted flow")
}

func TestEngineWeightedCompletionOrder(t *testing.T) {
	h := newHarness()
	l := h.e.AddLink(100)
	h.e.AddFlow(1, []int{l}, -1, 0, 3, 900, nil)
	h.e.AddFlow(2, []int{l}, -1, 0, 1, 900, nil)
	h.run(t)
	// Phase 1: rates 75/25 until f1 finishes at t=12 (900/75); f2 has
	// 600 left, then runs at 100 → t=18.
	approx(t, h.doneAt(t, 1), 12, 1e-9, "weight-3 flow")
	approx(t, h.doneAt(t, 2), 18, 1e-9, "weight-1 flow")
}

func TestEngineUpdateFlowReband(t *testing.T) {
	h := newHarness()
	l := h.e.AddLink(100)
	h.e.AddFlow(1, []int{l}, l, 0, 1, 1000, nil)
	h.e.AddFlow(2, []int{l}, l, 1, 1, 1000, nil)
	// At t=2, promote flow 2 to green: they split 50/50 from there.
	h.k.Post(2, func() {
		if !h.e.UpdateFlow(2, []int{l}, l, 0, 1) {
			t.Error("UpdateFlow returned false")
		}
	})
	h.run(t)
	// f1: 200 by t=2, then 50 B/s → t=18. f2: 0 by t=2 then 50 B/s
	// until f1 finishes (800 served at t=18), then 100 B/s → t=20.
	approx(t, h.doneAt(t, 1), 18, 1e-9, "demoted-by-promotion flow")
	approx(t, h.doneAt(t, 2), 20, 1e-9, "promoted flow")
}

func TestEngineRemoveFlow(t *testing.T) {
	h := newHarness()
	l := h.e.AddLink(100)
	h.e.AddFlow(1, []int{l}, -1, 0, 1, 1000, nil)
	h.e.AddFlow(2, []int{l}, -1, 0, 1, 1000, nil)
	h.k.Post(4, func() {
		if !h.e.RemoveFlow(2) {
			t.Error("RemoveFlow returned false")
		}
	})
	h.run(t)
	// 200 served by t=4, then full rate: t = 4 + 800/100 = 12.
	approx(t, h.doneAt(t, 1), 12, 1e-9, "surviving flow")
	if len(h.done) != 1 {
		t.Fatalf("removed flow must not fire onDone: %v", h.done)
	}
	if _, ok := h.e.Remaining(2); ok {
		t.Fatal("removed flow still queryable")
	}
}

// Completion callbacks may chain new flows — the synchronous-training
// pattern. Each generation starts when the previous finishes.
func TestEngineChainedCompletions(t *testing.T) {
	h := &engineHarness{k: sim.NewKernel()}
	var gen int
	h.e = NewEngine(h.k, func(id FlowID, tag any) {
		h.done = append(h.done, doneRec{id: id, at: h.k.Now()})
		if gen < 3 {
			gen++
			h.e.AddFlow(FlowID(100+gen), []int{0}, -1, 0, 1, 500, nil)
		}
	})
	h.e.AddLink(100)
	h.e.AddFlow(100, []int{0}, -1, 0, 1, 500, nil)
	h.k.Run(nil)
	if len(h.done) != 4 {
		t.Fatalf("want 4 chained completions, got %v", h.done)
	}
	for i, d := range h.done {
		approx(t, d.at, float64(i+1)*5, 1e-9, "chained completion time")
	}
}

// Randomized engine soak: random arrivals/cap changes on a small mesh;
// checks byte conservation (every flow completes having served its
// demand; per-link served bytes equal the sum of demands routed over
// the link) and that the simulation drains.
func TestEngineRandomSoakConservation(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h := newHarness()
		nLinks := 3 + rng.Intn(4)
		for i := 0; i < nLinks; i++ {
			h.e.AddLink(50 + float64(rng.Intn(200)))
		}
		expect := make([]float64, nLinks)
		nFlows := 5 + rng.Intn(20)
		for i := 0; i < nFlows; i++ {
			nl := 1 + rng.Intn(3)
			links := make([]int, 0, nl)
			seen := make(map[int]bool)
			for j := 0; j < nl; j++ {
				l := rng.Intn(nLinks)
				if !seen[l] {
					seen[l] = true
					links = append(links, l)
				}
			}
			bytes := float64(100 + rng.Intn(10000))
			for _, l := range links {
				expect[l] += bytes
			}
			id, band := FlowID(i+1), rng.Intn(2)
			at := rng.Float64() * 10
			lks := links
			h.k.Post(at, func() {
				h.e.AddFlow(id, lks, lks[0], band, 1+rng.Float64(), bytes, nil)
			})
		}
		// A couple of mid-run capacity wobbles (never to zero, so the
		// run always drains).
		for i := 0; i < 3; i++ {
			l := rng.Intn(nLinks)
			c := 20 + float64(rng.Intn(300))
			h.k.Post(rng.Float64()*20, func() { h.e.SetLinkCap(l, c) })
		}
		h.k.Run(nil)
		if len(h.done) != nFlows {
			t.Fatalf("seed %d: %d of %d flows completed", seed, len(h.done), nFlows)
		}
		h.e.Sync()
		for l := 0; l < nLinks; l++ {
			// completionEps truncation per flow bounds the deficit.
			slack := float64(nFlows)*completionEps + 1e-3
			if math.Abs(h.e.LinkServedBytes(l)-expect[l]) > slack {
				t.Fatalf("seed %d link %d: served %g, want %g (slack %g)",
					seed, l, h.e.LinkServedBytes(l), expect[l], slack)
			}
		}
	}
}

func TestEngineBacklogAndRateAccessors(t *testing.T) {
	h := newHarness()
	l := h.e.AddLink(100)
	h.e.AddFlow(1, []int{l}, -1, 0, 1, 1000, nil)
	if r, ok := h.e.Rate(1); !ok || r != 100 {
		t.Fatalf("Rate = %g, %v", r, ok)
	}
	h.k.Post(3, func() {
		h.e.Sync()
		approx(t, h.e.LinkBacklogBytes(l), 700, 1e-6, "backlog at t=3")
		if rem, ok := h.e.Remaining(1); !ok || math.Abs(rem-700) > 1e-6 {
			t.Fatalf("Remaining = %g, %v", rem, ok)
		}
	})
	h.run(t)
}
