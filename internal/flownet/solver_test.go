package flownet

import (
	"math"
	"testing"
)

func approx(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %g, want %g (tol %g)", what, got, want, tol)
	}
}

func TestSingleFlowGetsFullCapacity(t *testing.T) {
	r := Solve([]float64{100}, []Flow{{Links: []int{0}, Weight: 1, BandLink: -1}})
	approx(t, r[0], 100, 1e-6, "lone flow")
}

func TestEqualFlowsSplitEvenly(t *testing.T) {
	fl := []Flow{
		{Links: []int{0}, Weight: 1, BandLink: -1},
		{Links: []int{0}, Weight: 1, BandLink: -1},
	}
	r := Solve([]float64{100}, fl)
	approx(t, r[0], 50, 1e-6, "flow 0")
	approx(t, r[1], 50, 1e-6, "flow 1")
}

func TestWeightedShare(t *testing.T) {
	fl := []Flow{
		{Links: []int{0}, Weight: 1, BandLink: -1},
		{Links: []int{0}, Weight: 3, BandLink: -1},
	}
	r := Solve([]float64{100}, fl)
	approx(t, r[0], 25, 1e-6, "weight-1 flow")
	approx(t, r[1], 75, 1e-6, "weight-3 flow")
}

// The classic progressive-filling example: two links, one flow on each,
// plus one flow crossing both. The shared flow bottlenecks on the tight
// link; the flow on the loose link picks up the residual.
func TestClassicMaxMin(t *testing.T) {
	caps := []float64{1, 2}
	fl := []Flow{
		{Links: []int{0}, Weight: 1, BandLink: -1},
		{Links: []int{1}, Weight: 1, BandLink: -1},
		{Links: []int{0, 1}, Weight: 1, BandLink: -1},
	}
	r := Solve(caps, fl)
	approx(t, r[0], 0.5, 1e-6, "flow on tight link")
	approx(t, r[1], 1.5, 1e-6, "flow on loose link")
	approx(t, r[2], 0.5, 1e-6, "crossing flow")
}

// Strict priority at the shared egress: green takes the whole link,
// yellow starves — the TensorLights mechanism.
func TestStrictPriorityStarvesYellow(t *testing.T) {
	fl := []Flow{
		{Links: []int{0}, Weight: 1, Band: 0, BandLink: 0},
		{Links: []int{0}, Weight: 1, Band: 1, BandLink: 0},
	}
	r := Solve([]float64{100}, fl)
	approx(t, r[0], 100, 1e-6, "green")
	approx(t, r[1], 0, 1e-6, "yellow")
}

// Work-conserving borrowing: when green is bottlenecked elsewhere,
// yellow gets the egress residual instead of idling it — HTB's ceil
// borrow, and the reason TensorLights preserves aggregate throughput.
func TestYellowBorrowsGreenResidual(t *testing.T) {
	caps := []float64{10, 4} // egress, green's remote bottleneck
	fl := []Flow{
		{Links: []int{0, 1}, Weight: 1, Band: 0, BandLink: 0},
		{Links: []int{0}, Weight: 1, Band: 1, BandLink: 0},
	}
	r := Solve(caps, fl)
	approx(t, r[0], 4, 1e-6, "green at remote bottleneck")
	approx(t, r[1], 6, 1e-6, "yellow on the residual")
}

// Three bands fill in order: band 0 saturates its bottleneck, band 1
// the next residual, band 2 gets nothing.
func TestThreeBandFill(t *testing.T) {
	caps := []float64{10, 3, 5}
	fl := []Flow{
		{Links: []int{0, 1}, Weight: 1, Band: 0, BandLink: 0},
		{Links: []int{0, 2}, Weight: 1, Band: 1, BandLink: 0},
		{Links: []int{0}, Weight: 1, Band: 2, BandLink: 0},
	}
	r := Solve(caps, fl)
	approx(t, r[0], 3, 1e-6, "band 0")
	approx(t, r[1], 5, 1e-6, "band 1")
	approx(t, r[2], 2, 1e-6, "band 2 residual")
}

func TestDownLinkZeroRate(t *testing.T) {
	fl := []Flow{
		{Links: []int{0}, Weight: 1, BandLink: -1},
		{Links: []int{1}, Weight: 1, BandLink: -1},
	}
	r := Solve([]float64{0, 100}, fl)
	approx(t, r[0], 0, 0, "flow on down link")
	approx(t, r[1], 100, 1e-6, "flow on live link")
}

// A yellow flow whose green contender sits on a down link must still be
// unblocked: the green freezes at zero, then yellow fills the egress.
func TestYellowUnblocksWhenGreenIsDowned(t *testing.T) {
	caps := []float64{10, 0}
	fl := []Flow{
		{Links: []int{0, 1}, Weight: 1, Band: 0, BandLink: 0},
		{Links: []int{0}, Weight: 1, Band: 1, BandLink: 0},
	}
	r := Solve(caps, fl)
	approx(t, r[0], 0, 0, "green on down link")
	approx(t, r[1], 10, 1e-6, "yellow fills the egress")
}

func TestDegenerateFlows(t *testing.T) {
	fl := []Flow{
		{Links: nil, Weight: 1, BandLink: -1},          // no links
		{Links: []int{0}, Weight: 0, BandLink: -1},     // weight defaults to 1
		{Links: []int{0}, Weight: -2.5, BandLink: -1},  // ditto
	}
	r := Solve([]float64{100}, fl)
	approx(t, r[0], 0, 0, "linkless flow")
	approx(t, r[1], 50, 1e-6, "zero-weight flow")
	approx(t, r[2], 50, 1e-6, "negative-weight flow")
}

func TestSolverScratchReuse(t *testing.T) {
	var s Solver
	caps := []float64{100, 50}
	fl := []Flow{
		{Links: []int{0}, Weight: 1, BandLink: -1},
		{Links: []int{0, 1}, Weight: 1, BandLink: -1},
	}
	first := append([]float64(nil), s.Solve(caps, fl, nil)...)
	var rates []float64
	for i := 0; i < 100; i++ {
		rates = s.Solve(caps, fl, rates[:0])
		for j := range rates {
			if rates[j] != first[j] {
				t.Fatalf("solve %d diverged: %v vs %v", i, rates, first)
			}
		}
	}
}
