package flownet

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// FlowID identifies a flow in the engine; the fabric reuses its own
// flow IDs here.
type FlowID uint64

// completionEps is the residual-demand slack (bytes) below which a flow
// counts as finished. Purely a performance knob: a flow that misses the
// threshold by floating-point residue completes on the next (immediate)
// completion event instead.
const completionEps = 1.0 / 16

// flowState is the engine's record of one active flow.
type flowState struct {
	id        FlowID
	seq       uint64 // insertion sequence; orders solver input deterministically
	links     []int
	bandLink  int
	band      int
	weight    float64
	remaining float64 // payload bytes still to serve
	rate      float64 // current allocation, bytes/sec
	tag       any

	// attLinks is links plus bandLink (deduplicated) — every link whose
	// state couples this flow to others. attPos[i] is the flow's index
	// in linkFlows[attLinks[i]], for O(1) detach.
	attLinks []int
	attPos   []int
	inComp   bool // scratch: member of the component being re-solved
}

// Engine advances fluid flows on a discrete-event kernel. It keeps the
// max-min allocation current across flow arrivals, departures, link
// capacity changes and band changes, accumulates per-link served-byte
// and busy-time counters (the analytic analogue of the chunk fabric's
// port accounting), and schedules exactly one kernel event: the next
// flow completion.
//
// Rate recomputation is scoped and batched so cost tracks the traffic
// footprint, not the cluster size:
//
//   - mutations mark their links dirty and defer the recompute to a
//     same-timestamp kernel event, so a burst of mutations at one
//     instant (a PS broadcasting its model adds one flow per worker —
//     hundreds at 10k-host scale) costs one solve instead of one per
//     mutation. No simulated time passes in between, so no fluid moves
//     at a stale rate;
//   - the recompute re-solves only the connected component of flows
//     reachable from the dirty links through shared links (including
//     strict-priority band links), discovered by BFS over a persistent
//     link->flows index. Flows in unrelated components keep their rates:
//     max-min allocations are independent across link-disjoint sets.
//
// The engine is deterministic: flows advance and complete in insertion
// order, and each component's solver input is sorted by insertion
// sequence, so equal-seed runs produce identical event sequences.
type Engine struct {
	k      *sim.Kernel
	onDone func(id FlowID, tag any)

	caps   []float64
	served []float64 // cumulative payload bytes through each link
	busy   []float64 // cumulative busy-fraction-seconds per link

	// linkRate[l] is the current aggregate rate on link l; activeLinks
	// lists links that have (or recently had) a positive rate, so
	// advance cost scales with the traffic footprint. Entries whose
	// rate dropped to zero are skipped and compacted away lazily.
	linkRate    []float64
	linkActive  []bool
	activeLinks []int

	// linkFlows[l] holds the active flows attached to link l (path
	// links plus band links); dirtyLinks accumulates the links whose
	// coupled flows need a re-solve.
	linkFlows  [][]*flowState
	dirtyMark  []bool
	dirtyLinks []int
	visitMark  []bool // BFS scratch, always false between resolves

	flows   map[FlowID]*flowState
	order   []*flowState
	free    []*flowState // retired flowStates for reuse
	nextSeq uint64
	lastT   float64
	next    sim.Ticket // armed completion event (zero when none)
	nextAt  float64

	// dirty marks the allocation stale; a pooled same-timestamp kernel
	// event (flushFn) performs the deferred recompute. Both callbacks
	// are bound once so posting them never allocates a closure.
	dirty         bool
	flushFn       func()
	completionsFn func()

	solver    Solver
	sflows    []Flow
	srates    []float64
	compFlows []*flowState
	compLinks []int
	queue     []int
	doneBuf   []*flowState
	resolves  uint64
}

// NewEngine creates an engine on the kernel. onDone fires — inside a
// kernel event, in flow insertion order — when a flow's demand reaches
// zero, i.e. when its last byte has cleared the bottleneck.
func NewEngine(k *sim.Kernel, onDone func(id FlowID, tag any)) *Engine {
	e := &Engine{
		k:      k,
		onDone: onDone,
		flows:  make(map[FlowID]*flowState),
	}
	e.flushFn = e.flush
	e.completionsFn = e.completions
	return e
}

// AddLink registers a link with the given capacity (payload bytes/sec;
// <= 0 means down) and returns its ID. Links are never removed; an
// unused link costs nothing per solve.
func (e *Engine) AddLink(capacity float64) int {
	id := len(e.caps)
	e.caps = append(e.caps, capacity)
	e.served = append(e.served, 0)
	e.busy = append(e.busy, 0)
	e.linkRate = append(e.linkRate, 0)
	e.linkActive = append(e.linkActive, false)
	e.linkFlows = append(e.linkFlows, nil)
	e.dirtyMark = append(e.dirtyMark, false)
	e.visitMark = append(e.visitMark, false)
	return id
}

// NumLinks returns the number of registered links.
func (e *Engine) NumLinks() int { return len(e.caps) }

// LinkCap returns link l's current capacity.
func (e *Engine) LinkCap(l int) float64 { return e.caps[l] }

// SetLinkCap changes a link's capacity (faults: detach = 0, degrade =
// scaled) and recomputes the affected flows' rates. A no-op when the
// capacity is unchanged, so redundant fault/reconfig notifications stay
// cheap.
func (e *Engine) SetLinkCap(l int, capacity float64) {
	if e.caps[l] == capacity {
		return
	}
	e.Sync()
	e.caps[l] = capacity
	e.markLinkDirty(l)
	e.markDirty()
}

// LinkServedBytes returns cumulative payload bytes pushed through link
// l as of the last Sync/mutation.
func (e *Engine) LinkServedBytes(l int) float64 { return e.served[l] }

// LinkBusySeconds returns the cumulative busy time of link l: the
// integral of min(1, aggregateRate/capacity), matching the chunk
// fabric's per-port busy-time accounting.
func (e *Engine) LinkBusySeconds(l int) float64 { return e.busy[l] }

// LinkBacklogBytes returns the bytes still to be served across link l —
// the fluid analogue of a port's queued backlog.
func (e *Engine) LinkBacklogBytes(l int) float64 {
	var b float64
	for _, fs := range e.order {
		for _, fl := range fs.links {
			if fl == l {
				b += fs.remaining
				break
			}
		}
	}
	return b
}

// ActiveFlows returns the number of in-flight flows.
func (e *Engine) ActiveFlows() int { return len(e.order) }

// Resolves returns how many times the allocation was recomputed.
func (e *Engine) Resolves() uint64 { return e.resolves }

// Sync advances the fluid state (per-flow remaining demand, per-link
// served bytes and busy time) to the kernel clock. Mutations do this
// implicitly; metric readers call it before sampling counters.
func (e *Engine) Sync() { e.advance(e.k.Now()) }

func (e *Engine) advance(now float64) {
	dt := now - e.lastT
	if dt <= 0 {
		return
	}
	e.lastT = now
	for _, fs := range e.order {
		if fs.rate > 0 {
			fs.remaining -= fs.rate * dt
			if fs.remaining < 0 {
				fs.remaining = 0
			}
		}
	}
	idle := 0
	for _, l := range e.activeLinks {
		r := e.linkRate[l]
		if r <= 0 {
			idle++
			continue
		}
		e.served[l] += r * dt
		if c := e.caps[l]; c > 0 {
			u := r / c
			if u > 1 {
				u = 1
			}
			e.busy[l] += u * dt
		}
	}
	// Compact out links whose traffic has drained so the scan stays
	// proportional to current activity.
	if idle > 64 && 2*idle > len(e.activeLinks) {
		kept := e.activeLinks[:0]
		for _, l := range e.activeLinks {
			if e.linkRate[l] > 0 {
				kept = append(kept, l)
			} else {
				e.linkActive[l] = false
			}
		}
		e.activeLinks = kept
	}
}

// attach indexes the flow under every link that couples it to others.
func (e *Engine) attach(fs *flowState) {
	add := func(l int) {
		for _, a := range fs.attLinks {
			if a == l {
				return
			}
		}
		fs.attLinks = append(fs.attLinks, l)
		fs.attPos = append(fs.attPos, len(e.linkFlows[l]))
		e.linkFlows[l] = append(e.linkFlows[l], fs)
	}
	for _, l := range fs.links {
		add(l)
	}
	if fs.bandLink >= 0 {
		add(fs.bandLink)
	}
}

// detach removes the flow from the link index (swap-remove, fixing the
// moved flow's back-pointer).
func (e *Engine) detach(fs *flowState) {
	for i, l := range fs.attLinks {
		p := fs.attPos[i]
		lf := e.linkFlows[l]
		last := len(lf) - 1
		moved := lf[last]
		lf[p] = moved
		lf[last] = nil
		e.linkFlows[l] = lf[:last]
		if moved != fs {
			for j, ml := range moved.attLinks {
				if ml == l {
					moved.attPos[j] = p
					break
				}
			}
		}
	}
	fs.attLinks = fs.attLinks[:0]
	fs.attPos = fs.attPos[:0]
}

// markLinkDirty queues link l for the next component re-solve.
func (e *Engine) markLinkDirty(l int) {
	if !e.dirtyMark[l] {
		e.dirtyMark[l] = true
		e.dirtyLinks = append(e.dirtyLinks, l)
	}
}

// markFlowDirty queues every link the flow is attached to.
func (e *Engine) markFlowDirty(fs *flowState) {
	for _, l := range fs.attLinks {
		e.markLinkDirty(l)
	}
}

// AddFlow starts a flow of the given demand (payload bytes) across the
// listed links. bandLink/band place it in the strict-priority order at
// its source egress (bandLink < 0 disables gating); weight scales its
// fair share. tag is returned to onDone untouched. links is copied, so
// callers may reuse the slice.
func (e *Engine) AddFlow(id FlowID, links []int, bandLink, band int, weight, bytes float64, tag any) {
	if bytes <= 0 {
		panic(fmt.Sprintf("flownet: flow %d demand %g must be positive", id, bytes))
	}
	if len(links) == 0 {
		panic(fmt.Sprintf("flownet: flow %d needs at least one link", id))
	}
	if _, ok := e.flows[id]; ok {
		panic(fmt.Sprintf("flownet: flow %d already active", id))
	}
	e.Sync()
	var fs *flowState
	if n := len(e.free); n > 0 {
		fs = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		fs = &flowState{}
	}
	fs.id = id
	fs.seq = e.nextSeq
	fs.links = append(fs.links[:0], links...)
	fs.bandLink = bandLink
	fs.band = band
	fs.weight = weight
	fs.remaining = bytes
	fs.rate = 0
	fs.tag = tag
	e.nextSeq++
	e.flows[id] = fs
	e.order = append(e.order, fs)
	e.attach(fs)
	e.markFlowDirty(fs)
	e.markDirty()
}

// release returns a detached, unlinked flowState to the free list.
func (e *Engine) release(fs *flowState) {
	fs.tag = nil
	e.free = append(e.free, fs)
}

// UpdateFlow reroutes/rebands an active flow in place (tc reconfigured
// the source host), preserving its remaining demand and its position in
// the deterministic completion order. Returns false for unknown IDs.
// A no-op resolve is skipped when nothing changed. links is copied, so
// callers may reuse the slice.
func (e *Engine) UpdateFlow(id FlowID, links []int, bandLink, band int, weight float64) bool {
	fs, ok := e.flows[id]
	if !ok {
		return false
	}
	if fs.bandLink == bandLink && fs.band == band && fs.weight == weight && intsEqual(fs.links, links) {
		return true
	}
	if len(links) == 0 {
		panic(fmt.Sprintf("flownet: flow %d needs at least one link", id))
	}
	e.Sync()
	e.markFlowDirty(fs) // old coupling
	e.detach(fs)
	fs.links = append(fs.links[:0], links...)
	fs.bandLink = bandLink
	fs.band = band
	fs.weight = weight
	e.attach(fs)
	e.markFlowDirty(fs) // new coupling
	e.markDirty()
	return true
}

// RemoveFlow cancels an active flow without completing it (no onDone).
// Returns false for unknown IDs.
func (e *Engine) RemoveFlow(id FlowID) bool {
	fs, ok := e.flows[id]
	if !ok {
		return false
	}
	e.Sync()
	e.markFlowDirty(fs)
	e.detach(fs)
	delete(e.flows, id)
	for i, o := range e.order {
		if o == fs {
			e.order = append(e.order[:i], e.order[i+1:]...)
			break
		}
	}
	e.release(fs)
	e.markDirty()
	return true
}

// Remaining returns a flow's outstanding demand in bytes.
func (e *Engine) Remaining(id FlowID) (float64, bool) {
	fs, ok := e.flows[id]
	if !ok {
		return 0, false
	}
	return fs.remaining, true
}

// Rate returns a flow's current allocation in bytes/sec.
func (e *Engine) Rate(id FlowID) (float64, bool) {
	fs, ok := e.flows[id]
	if !ok {
		return 0, false
	}
	e.ensureResolved()
	return fs.rate, true
}

// ForEach visits active flows in insertion order. The callback may call
// UpdateFlow (in-place mutation) but must not add or remove flows.
func (e *Engine) ForEach(fn func(id FlowID, tag any)) {
	for _, fs := range e.order {
		fn(fs.id, fs.tag)
	}
}

// markDirty defers the allocation recompute to a same-timestamp kernel
// event (or to the first rate read, whichever comes first). The flush
// runs before the kernel advances past the current instant, so stale
// rates are never integrated over a nonzero interval. The event is
// pooled (Post, no handle): if a rate read resolves eagerly first, the
// flush fires as a cheap no-op.
func (e *Engine) markDirty() {
	if e.dirty {
		return
	}
	e.dirty = true
	e.k.Post(e.k.Now(), e.flushFn)
}

func (e *Engine) flush() {
	if e.dirty {
		e.resolve()
	}
}

// ensureResolved recomputes eagerly when a caller needs current rates
// while a deferred flush is pending (e.g. Rate between two mutations at
// the same instant).
func (e *Engine) ensureResolved() {
	if e.dirty {
		e.resolve()
	}
}

// resolve recomputes the allocation for every flow coupled to a dirty
// link and rearms the next completion event. Callers must have advanced
// the fluid state to now first.
//
// The affected set is the BFS closure of the dirty links over the
// link->flows index: a flow joins when any of its links (path or band)
// is reached, and contributes all its links in turn. Flows outside the
// closure share no constraint with any mutated flow or link, so their
// max-min rates are unchanged by construction.
func (e *Engine) resolve() {
	e.dirty = false
	e.resolves++

	e.queue = e.queue[:0]
	e.compFlows = e.compFlows[:0]
	e.compLinks = e.compLinks[:0]
	for _, l := range e.dirtyLinks {
		e.dirtyMark[l] = false
		if !e.visitMark[l] {
			e.visitMark[l] = true
			e.queue = append(e.queue, l)
		}
	}
	e.dirtyLinks = e.dirtyLinks[:0]
	for i := 0; i < len(e.queue); i++ {
		l := e.queue[i]
		e.compLinks = append(e.compLinks, l)
		for _, fs := range e.linkFlows[l] {
			if fs.inComp {
				continue
			}
			fs.inComp = true
			e.compFlows = append(e.compFlows, fs)
			for _, al := range fs.attLinks {
				if !e.visitMark[al] {
					e.visitMark[al] = true
					e.queue = append(e.queue, al)
				}
			}
		}
	}
	for _, l := range e.queue {
		e.visitMark[l] = false
	}

	if len(e.compFlows) > 0 {
		// Solver input in insertion order: the allocation itself is
		// order-independent, but fixing the order pins the floating-point
		// evaluation so results do not depend on adjacency internals.
		// Insertion sort: BFS discovers flows roughly in insertion order
		// (link lists append in arrival order), so this is near-linear,
		// and unlike sort.Slice it does not allocate.
		cf := e.compFlows
		for i := 1; i < len(cf); i++ {
			fs := cf[i]
			j := i - 1
			for j >= 0 && cf[j].seq > fs.seq {
				cf[j+1] = cf[j]
				j--
			}
			cf[j+1] = fs
		}
		e.sflows = e.sflows[:0]
		for _, fs := range e.compFlows {
			e.sflows = append(e.sflows, Flow{
				Links: fs.links, Weight: fs.weight, Band: fs.band, BandLink: fs.bandLink,
			})
		}
		e.srates = e.solver.Solve(e.caps, e.sflows, e.srates[:0])
		for i, fs := range e.compFlows {
			fs.rate = e.srates[i]
			fs.inComp = false
		}
	}
	// Refresh the component's link aggregates; untouched links keep
	// their rates (their flows were not in the component).
	for _, l := range e.compLinks {
		e.linkRate[l] = 0
	}
	for _, fs := range e.compFlows {
		if fs.rate <= 0 {
			continue
		}
		for _, l := range fs.links {
			e.linkRate[l] += fs.rate
		}
	}
	for _, l := range e.compLinks {
		if e.linkRate[l] > 0 && !e.linkActive[l] {
			e.linkActive[l] = true
			e.activeLinks = append(e.activeLinks, l)
		}
	}
	e.schedule()
}

// schedule (re)arms the single completion event at the earliest
// projected flow finish. Kept in place when the target time is
// unchanged, sparing the event heap a cancel+push per resolve. The
// event is a ticketed pooled event (see sim.PostTicket), so the heavy
// re-arm traffic of a busy fabric recycles one struct instead of
// allocating per resolve.
func (e *Engine) schedule() {
	t := math.MaxFloat64
	for _, fs := range e.order {
		if fs.rate <= 0 {
			continue
		}
		if at := e.lastT + fs.remaining/fs.rate; at < t {
			t = at
		}
	}
	if t == math.MaxFloat64 {
		e.k.CancelTicket(e.next)
		e.next = sim.Ticket{}
		return
	}
	if now := e.k.Now(); t < now {
		t = now
	}
	if e.next.Active() && t == e.nextAt {
		return
	}
	e.k.CancelTicket(e.next)
	e.next = e.k.PostTicket(t, e.completionsFn)
	e.nextAt = t
}

// completions retires every flow whose demand has drained, recomputes
// the affected allocations once, then fires the completion callbacks in
// insertion order. Callbacks may start new flows (synchronous training
// reacts to transfer completion by sending the next update); the engine
// state is consistent before the first callback runs.
func (e *Engine) completions() {
	e.next = sim.Ticket{}
	e.advance(e.k.Now())
	done := e.doneBuf[:0]
	kept := e.order[:0]
	for _, fs := range e.order {
		if fs.remaining <= completionEps {
			done = append(done, fs)
			delete(e.flows, fs.id)
			e.markFlowDirty(fs)
			e.detach(fs)
		} else {
			kept = append(kept, fs)
		}
	}
	for i := len(kept); i < len(e.order); i++ {
		e.order[i] = nil
	}
	e.order = kept
	e.doneBuf = done[:0]
	e.resolve()
	for _, fs := range done {
		e.onDone(fs.id, fs.tag)
	}
	for _, fs := range done {
		e.release(fs)
	}
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
