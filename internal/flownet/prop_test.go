package flownet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomScenario builds a bounded random solver input from a seed.
func randomScenario(rng *rand.Rand) ([]float64, []Flow) {
	nLinks := 1 + rng.Intn(12)
	caps := make([]float64, nLinks)
	for i := range caps {
		switch rng.Intn(10) {
		case 0:
			caps[i] = 0 // down link
		case 1:
			caps[i] = rng.Float64() * 1e-3 // nearly dead
		default:
			caps[i] = 1 + rng.Float64()*1e10
		}
	}
	nFlows := rng.Intn(24)
	flows := make([]Flow, nFlows)
	for i := range flows {
		nl := rng.Intn(4)
		links := make([]int, 0, nl)
		seen := make(map[int]bool)
		for j := 0; j < nl; j++ {
			l := rng.Intn(nLinks)
			if !seen[l] {
				seen[l] = true
				links = append(links, l)
			}
		}
		bandLink := -1
		if len(links) > 0 && rng.Intn(2) == 0 {
			bandLink = links[0]
		}
		flows[i] = Flow{
			Links:    links,
			Weight:   float64(1+rng.Intn(5)) * (0.5 + rng.Float64()),
			Band:     rng.Intn(3),
			BandLink: bandLink,
		}
	}
	return caps, flows
}

// checkInvariants asserts the solver's documented contract on one
// solved scenario.
func checkInvariants(t *testing.T, caps []float64, flows []Flow, rates []float64) {
	t.Helper()
	if len(rates) != len(flows) {
		t.Fatalf("rates len %d != flows len %d", len(rates), len(flows))
	}
	// Per-link capacity: sum of allocations never exceeds capacity
	// (modulo the solver's stated fp slack).
	alloc := make([]float64, len(caps))
	for i, fl := range flows {
		if rates[i] < 0 {
			t.Fatalf("flow %d negative rate %g", i, rates[i])
		}
		if len(fl.Links) == 0 && rates[i] != 0 {
			t.Fatalf("linkless flow %d got rate %g", i, rates[i])
		}
		for _, l := range fl.Links {
			alloc[l] += rates[i]
		}
	}
	for l, a := range alloc {
		c := caps[l]
		if c < 0 {
			c = 0
		}
		if a > c+c*1e-6+1e-3 {
			t.Fatalf("link %d oversubscribed: alloc %g > cap %g", l, a, c)
		}
	}
	// Bottleneck: every flow with links crosses at least one saturated
	// link — it could not be sped up without displacing someone.
	for i, fl := range flows {
		if len(fl.Links) == 0 {
			continue
		}
		bottlenecked := false
		for _, l := range fl.Links {
			c := caps[l]
			if c < 0 {
				c = 0
			}
			if alloc[l] >= c-c*1e-6-1e-2 {
				bottlenecked = true
				break
			}
		}
		if !bottlenecked {
			t.Fatalf("flow %d (rate %g, links %v) has no saturated link; alloc=%v caps=%v",
				i, rates[i], fl.Links, alloc, caps)
		}
	}
}

func TestQuickSolverInvariants(t *testing.T) {
	var s Solver
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		caps, flows := randomScenario(rng)
		rates := s.Solve(caps, flows, nil)
		checkInvariants(t, caps, flows, rates)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSolverDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		caps, flows := randomScenario(rng)
		var s1, s2 Solver
		r1 := s1.Solve(caps, flows, nil)
		r2 := s2.Solve(caps, flows, nil)
		for i := range r1 {
			if r1[i] != r2[i] {
				t.Fatalf("seed %d: nondeterministic rates at flow %d: %g vs %g", seed, i, r1[i], r2[i])
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMutationConservation drives random add/remove/reprioritize
// sequences through a shared Solver and checks that every intermediate
// allocation honors the invariants, and that the total allocation on
// each resolve equals a from-scratch solve of the same state (the
// solver is stateless across calls, so incremental use must conserve
// the allocation exactly).
func TestQuickMutationConservation(t *testing.T) {
	var shared Solver
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		caps, pool := randomScenario(rng)
		if len(pool) == 0 {
			return true
		}
		live := make([]Flow, 0, len(pool))
		for step := 0; step < 20; step++ {
			switch rng.Intn(3) {
			case 0: // add
				if len(pool) > 0 {
					live = append(live, pool[rng.Intn(len(pool))])
				}
			case 1: // remove
				if len(live) > 0 {
					i := rng.Intn(len(live))
					live = append(live[:i], live[i+1:]...)
				}
			case 2: // reprioritize
				if len(live) > 0 {
					live[rng.Intn(len(live))].Band = rng.Intn(3)
				}
			}
			incr := append([]float64(nil), shared.Solve(caps, live, nil)...)
			checkInvariants(t, caps, live, incr)
			fresh := Solve(caps, live)
			var sumI, sumF float64
			for i := range incr {
				sumI += incr[i]
				sumF += fresh[i]
				if incr[i] != fresh[i] {
					t.Fatalf("seed %d step %d: scratch-reuse rate differs at flow %d: %g vs %g",
						seed, step, i, incr[i], fresh[i])
				}
			}
			if math.Abs(sumI-sumF) > 1e-9*(1+math.Abs(sumF)) {
				t.Fatalf("seed %d step %d: total allocation not conserved: %g vs %g", seed, step, sumI, sumF)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// FuzzSolve decodes an arbitrary byte string into a solver scenario and
// asserts the solver contract. Wired into `make fuzz`; seed corpus in
// testdata/fuzz/FuzzSolve.
func FuzzSolve(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 100, 0, 1, 1, 0, 0, 0})
	f.Add([]byte{2, 10, 200, 2, 1, 0, 0, 0, 2, 1, 0, 1, 1, 1})
	f.Add([]byte{3, 0, 50, 255, 3, 2, 0, 1, 2, 1, 0, 9, 1, 2, 0, 1, 1, 1, 2, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		caps, flows := decodeScenario(data)
		if len(caps) == 0 {
			return
		}
		rates := Solve(caps, flows)
		checkInvariants(t, caps, flows, rates)
	})
}

// decodeScenario maps fuzz bytes onto a scenario: byte 0 is the link
// count (1..16), the next nLinks bytes are capacities (0 stays 0 — a
// down link — otherwise scaled up), and each following record of
// 2+nl bytes is one flow: [nLinks' nl | band+weight byte | nl link refs].
func decodeScenario(data []byte) ([]float64, []Flow) {
	if len(data) == 0 {
		return nil, nil
	}
	nLinks := int(data[0])%16 + 1
	data = data[1:]
	caps := make([]float64, nLinks)
	for i := 0; i < nLinks; i++ {
		var b byte
		if len(data) > 0 {
			b = data[0]
			data = data[1:]
		}
		caps[i] = float64(b) * 1e6
	}
	var flows []Flow
	for len(data) >= 2 && len(flows) < 64 {
		nl := int(data[0]) % 4
		meta := data[1]
		data = data[2:]
		links := make([]int, 0, nl)
		seen := make(map[int]bool)
		for j := 0; j < nl && len(data) > 0; j++ {
			l := int(data[0]) % nLinks
			data = data[1:]
			if !seen[l] {
				seen[l] = true
				links = append(links, l)
			}
		}
		bandLink := -1
		if len(links) > 0 && meta&0x80 != 0 {
			bandLink = links[0]
		}
		flows = append(flows, Flow{
			Links:    links,
			Weight:   float64(meta&0x0f) * 0.5, // exercises the w<=0 default too
			Band:     int(meta>>4) % 4,
			BandLink: bandLink,
		})
	}
	return caps, flows
}
