package tensorlights

// Benchmark harness: one benchmark per table and figure in the paper's
// evaluation (Section V), plus ablations for the design choices called
// out in DESIGN.md. Each benchmark runs the corresponding experiment at
// a reduced step count (shape, not wall-clock, is the reproduction
// target) and reports the paper's headline quantities as custom metrics
// next to the usual ns/op. `cmd/experiments` runs the same code at full
// scale.

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// benchSteps trades fidelity for benchmark runtime; ~60 iterations per
// job is enough for stable shapes.
const benchSteps = 1200

func benchOptions() sweep.Options {
	return sweep.Options{Steps: benchSteps, Seed: 42}
}

// BenchmarkFigure2PlacementJCT regenerates Figure 2: average JCT of 21
// concurrent jobs under each Table I placement, FIFO scheduling. The
// paper reports a performance gap of up to 75% between the worst and
// best placements.
func BenchmarkFigure2PlacementJCT(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		r, err := sweep.Figure2(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		gap = r.PerformanceGap()
	}
	b.ReportMetric(gap, "gap_%")
}

// BenchmarkFigure3BarrierWaitFIFO regenerates Figure 3: the ratio of
// average barrier wait (paper: 3.71x) and wait variance (paper: 4.37x)
// between placements #1 and #8 under FIFO.
func BenchmarkFigure3BarrierWaitFIFO(b *testing.B) {
	var meanRatio, varRatio float64
	for i := 0; i < b.N; i++ {
		r, err := sweep.Figure3(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		meanRatio, varRatio = r.MeanRatio(), r.VarRatio()
	}
	b.ReportMetric(meanRatio, "mean_ratio_x")
	b.ReportMetric(varRatio, "var_ratio_x")
}

// BenchmarkFigure5aNormalizedJCT regenerates Figure 5a: normalized JCT
// of TLs-One and TLs-RR versus FIFO across placements (paper: up to 27%
// and 16% improvement).
func BenchmarkFigure5aNormalizedJCT(b *testing.B) {
	var one, rr float64
	for i := 0; i < b.N; i++ {
		r, err := sweep.Figure5a(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		one, rr = r.BestImprovement()
	}
	b.ReportMetric(one, "tls_one_improvement_%")
	b.ReportMetric(rr, "tls_rr_improvement_%")
}

// BenchmarkFigure5bBatchSweep regenerates Figure 5b: normalized JCT
// versus local batch size at placement #1 (paper: up to 31% and 17%
// improvement at the smallest batch).
func BenchmarkFigure5bBatchSweep(b *testing.B) {
	var one, rr float64
	for i := 0; i < b.N; i++ {
		r, err := sweep.Figure5b(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		one, rr = r.BestImprovement()
	}
	b.ReportMetric(one, "tls_one_improvement_%")
	b.ReportMetric(rr, "tls_rr_improvement_%")
}

// BenchmarkFigure6BarrierWaitPolicies regenerates Figure 6: barrier
// wait variance reduction versus FIFO at placement #1 (paper: TLs-One
// 26% mean / 40% median, TLs-RR 15% / 30%).
func BenchmarkFigure6BarrierWaitPolicies(b *testing.B) {
	var oneMean, oneMedian, rrMean float64
	for i := 0; i < b.N; i++ {
		r, err := sweep.Figure6(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		oneMean, oneMedian = r.VarReduction("TLs-One")
		rrMean, _ = r.VarReduction("TLs-RR")
	}
	b.ReportMetric(oneMean, "one_var_reduction_%")
	b.ReportMetric(oneMedian, "one_median_var_reduction_%")
	b.ReportMetric(rrMean, "rr_var_reduction_%")
}

// BenchmarkTableIIUtilization regenerates Table II: normalized CPU and
// NIC utilization over the active window at placement #1 (paper: CPU
// 1.04-1.13x, network 1.20-1.21x).
func BenchmarkTableIIUtilization(b *testing.B) {
	var cpuPS, cpuWorker, netIn float64
	for i := 0; i < b.N; i++ {
		r, err := sweep.TableII(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		cpuPS = r.Rows[0].One
		cpuWorker = r.Rows[1].One
		netIn = r.Rows[2].One
	}
	b.ReportMetric(cpuPS, "cpu_ps_x")
	b.ReportMetric(cpuWorker, "cpu_worker_x")
	b.ReportMetric(netIn, "net_in_x")
}

// --- ablations -------------------------------------------------------

func ablationRun(b *testing.B, tls core.Config) float64 {
	b.Helper()
	p1, _ := cluster.PlacementByIndex(1)
	res, err := sweep.Run(sweep.RunConfig{
		Placement:   p1,
		TargetSteps: benchSteps,
		TLs:         tls,
		Cluster:     cluster.Config{Seed: 42},
	})
	if err != nil {
		b.Fatal(err)
	}
	return res.AvgJCT()
}

// BenchmarkAblationPrioVsHTB compares the paper's htb implementation
// against a plain prio qdisc: the mechanism is the priority order, not
// the specific discipline, so both should perform similarly.
func BenchmarkAblationPrioVsHTB(b *testing.B) {
	var htb, prio float64
	for i := 0; i < b.N; i++ {
		htb = ablationRun(b, core.Config{Policy: core.PolicyOne})
		prio = ablationRun(b, core.Config{Policy: core.PolicyOne, UsePrioQdisc: true})
	}
	b.ReportMetric(htb, "htb_avg_jct_s")
	b.ReportMetric(prio, "prio_avg_jct_s")
}

// BenchmarkAblationBands varies the number of priority bands: with only
// one band TensorLights degenerates to FIFO; more bands give finer
// discrimination among the 21 contending jobs.
func BenchmarkAblationBands(b *testing.B) {
	var jct1, jct3, jct6 float64
	for i := 0; i < b.N; i++ {
		jct1 = ablationRun(b, core.Config{Policy: core.PolicyOne, Bands: 1})
		jct3 = ablationRun(b, core.Config{Policy: core.PolicyOne, Bands: 3})
		jct6 = ablationRun(b, core.Config{Policy: core.PolicyOne, Bands: 6})
	}
	b.ReportMetric(jct1, "bands1_avg_jct_s")
	b.ReportMetric(jct3, "bands3_avg_jct_s")
	b.ReportMetric(jct6, "bands6_avg_jct_s")
}

// BenchmarkAblationRotationInterval varies TLs-RR's interval T: shorter
// intervals are fairer but reconfigure more often.
func BenchmarkAblationRotationInterval(b *testing.B) {
	var t5, t20, t60 float64
	for i := 0; i < b.N; i++ {
		t5 = ablationRun(b, core.Config{Policy: core.PolicyRR, IntervalSec: 5})
		t20 = ablationRun(b, core.Config{Policy: core.PolicyRR, IntervalSec: 20})
		t60 = ablationRun(b, core.Config{Policy: core.PolicyRR, IntervalSec: 60})
	}
	b.ReportMetric(t5, "T5_avg_jct_s")
	b.ReportMetric(t20, "T20_avg_jct_s")
	b.ReportMetric(t60, "T60_avg_jct_s")
}

// BenchmarkAblationOrderPolicies compares priority assignment orders
// (paper §IV-B leaves this unconstrained; with identical grid-search
// jobs the choice should barely matter).
func BenchmarkAblationOrderPolicies(b *testing.B) {
	var arrival, random float64
	for i := 0; i < b.N; i++ {
		arrival = ablationRun(b, core.Config{Policy: core.PolicyOne, Order: core.OrderArrival})
		random = ablationRun(b, core.Config{Policy: core.PolicyOne, Order: core.OrderRandom})
	}
	b.ReportMetric(arrival, "arrival_avg_jct_s")
	b.ReportMetric(random, "random_avg_jct_s")
}

// BenchmarkAblationPSAwarePlacement is the paper's §VII direction 1: a
// PS-aware cluster scheduler avoids colocation up front, making the
// end-host scheduler unnecessary. Compares FIFO on placement #1 against
// FIFO on the placement a PS-aware scheduler produces (#8).
func BenchmarkAblationPSAwarePlacement(b *testing.B) {
	var colocated, psAware float64
	for i := 0; i < b.N; i++ {
		p1, _ := cluster.PlacementByIndex(1)
		r1, err := sweep.Run(sweep.RunConfig{
			Placement: p1, TargetSteps: benchSteps, Cluster: cluster.Config{Seed: 42},
		})
		if err != nil {
			b.Fatal(err)
		}
		colocated = r1.AvgJCT()
		// A PS-aware scheduler spreads the 21 PSes uniformly.
		sched := cluster.NewScheduler(cluster.PolicyPSAware, 21, 12, sim.NewRNG(42))
		psHosts, _, err := sched.PlaceJobs(21, 20)
		if err != nil {
			b.Fatal(err)
		}
		placement := cluster.PSPlacementOf(psHosts)
		r8, err := sweep.Run(sweep.RunConfig{
			Placement: placement, TargetSteps: benchSteps, Cluster: cluster.Config{Seed: 42},
		})
		if err != nil {
			b.Fatal(err)
		}
		psAware = r8.AvgJCT()
	}
	b.ReportMetric(colocated, "colocated_avg_jct_s")
	b.ReportMetric(psAware, "ps_aware_avg_jct_s")
}

// BenchmarkAblationPolicySpectrum compares every scheduling policy in
// the repository on the heaviest-contention placement: FIFO (baseline),
// the paper's TLs-One and TLs-RR, the adaptive TLs-LPF extension, and
// the non-work-conserving StaticRate alternative the paper's §VII warns
// about.
func BenchmarkAblationPolicySpectrum(b *testing.B) {
	policies := []core.Policy{
		core.PolicyFIFO, core.PolicyOne, core.PolicyRR,
		core.PolicyLPF, core.PolicyStaticRate,
	}
	jcts := make([]float64, len(policies))
	for i := 0; i < b.N; i++ {
		for pi, pol := range policies {
			jcts[pi] = ablationRun(b, core.Config{Policy: pol})
		}
	}
	names := []string{"fifo", "tls_one", "tls_rr", "tls_lpf", "static_rate"}
	for pi, name := range names {
		b.ReportMetric(jcts[pi], name+"_avg_jct_s")
	}
}

// BenchmarkAblationSyncVsAsync compares synchronous training (the
// paper's focus) against asynchronous mode, where stragglers do not
// block peers but model staleness grows.
func BenchmarkAblationSyncVsAsync(b *testing.B) {
	p1, _ := cluster.PlacementByIndex(1)
	var syncJCT, asyncJCT float64
	for i := 0; i < b.N; i++ {
		rs, err := sweep.Run(sweep.RunConfig{
			Placement: p1, TargetSteps: benchSteps, Cluster: cluster.Config{Seed: 42},
		})
		if err != nil {
			b.Fatal(err)
		}
		ra, err := sweep.Run(sweep.RunConfig{
			Placement: p1, TargetSteps: benchSteps, Async: true, Cluster: cluster.Config{Seed: 42},
		})
		if err != nil {
			b.Fatal(err)
		}
		syncJCT, asyncJCT = rs.AvgJCT(), ra.AvgJCT()
	}
	b.ReportMetric(syncJCT, "sync_avg_jct_s")
	b.ReportMetric(asyncJCT, "async_avg_jct_s")
}

// BenchmarkEngineThroughput measures raw simulator speed: discrete
// events per second for the full 21-host, 21-job workload.
func BenchmarkEngineThroughput(b *testing.B) {
	p1, _ := cluster.PlacementByIndex(1)
	var events uint64
	for i := 0; i < b.N; i++ {
		res, err := sweep.Run(sweep.RunConfig{
			Placement: p1, TargetSteps: 400, Cluster: cluster.Config{Seed: int64(i)},
		})
		if err != nil {
			b.Fatal(err)
		}
		events += res.Events
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/run")
}

// BenchmarkNormalizationHelpers exercises the metric aggregation used
// by every figure, to keep the analysis path fast.
func BenchmarkNormalizationHelpers(b *testing.B) {
	xs := make([]float64, 4096)
	for i := range xs {
		xs[i] = float64(i%97) + 0.5
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = metrics.Summarize(xs)
	}
}

// BenchmarkChurnArrivalDeparture exercises the paper's batch-processing
// mode: Poisson job arrivals onto a PS-agnostic (binpacking) scheduler,
// TensorLights reconfiguring on every arrival and departure.
func BenchmarkChurnArrivalDeparture(b *testing.B) {
	var fifo, one float64
	for i := 0; i < b.N; i++ {
		base := sweep.ChurnOptions{
			Jobs:              12,
			ArrivalRatePerSec: 1,
			Steps:             benchSteps,
			Seed:              42,
			SchedPolicy:       cluster.PolicyBinpack,
		}
		fifoOpts := base
		fifoOpts.Policy = core.PolicyFIFO
		rf, err := sweep.Churn(fifoOpts)
		if err != nil {
			b.Fatal(err)
		}
		fifo = rf.AvgJCT
		oneOpts := base
		oneOpts.Policy = core.PolicyOne
		ro, err := sweep.Churn(oneOpts)
		if err != nil {
			b.Fatal(err)
		}
		one = ro.AvgJCT
	}
	b.ReportMetric(fifo, "fifo_avg_jct_s")
	b.ReportMetric(one, "tls_one_avg_jct_s")
}

// BenchmarkAblationSmallestUpdateFirst runs a heterogeneous model mix
// where the paper's §IV-B suggestion — prioritize jobs with smaller
// model updates — avoids head-of-line blocking behind large updates.
func BenchmarkAblationSmallestUpdateFirst(b *testing.B) {
	run := func(order core.Order) float64 {
		res, err := sweep.Churn(sweep.ChurnOptions{
			Jobs:              8,
			ArrivalRatePerSec: 2,
			Seed:              42,
			Policy:            core.PolicyOne,
			Order:             order,
			SchedPolicy:       cluster.PolicyBinpack,
			Templates:         workload.HeterogeneousMix(benchSteps),
		})
		if err != nil {
			b.Fatal(err)
		}
		return res.AvgJCT
	}
	var arrival, smallest float64
	for i := 0; i < b.N; i++ {
		arrival = run(core.OrderArrival)
		smallest = run(core.OrderSmallestUpdate)
	}
	b.ReportMetric(arrival, "arrival_avg_jct_s")
	b.ReportMetric(smallest, "smallest_first_avg_jct_s")
}

// BenchmarkAblationGradientCompression compares QSGD/TernGrad-style
// compressed gradients (related work the paper calls complementary)
// against and combined with TensorLights at the heaviest placement:
// compression relieves the ingress, priorities fix the egress bursts,
// and the combination wins.
func BenchmarkAblationGradientCompression(b *testing.B) {
	p1, _ := cluster.PlacementByIndex(1)
	run := func(policy core.Policy, compression float64) float64 {
		res, err := sweep.Run(sweep.RunConfig{
			Placement:       p1,
			TargetSteps:     benchSteps,
			TLs:             core.Config{Policy: policy},
			GradCompression: compression,
			Cluster:         cluster.Config{Seed: 42},
		})
		if err != nil {
			b.Fatal(err)
		}
		return res.AvgJCT()
	}
	var plain, comp, tls, both float64
	for i := 0; i < b.N; i++ {
		plain = run(core.PolicyFIFO, 1)
		comp = run(core.PolicyFIFO, 4)
		tls = run(core.PolicyOne, 1)
		both = run(core.PolicyOne, 4)
	}
	b.ReportMetric(plain, "fifo_avg_jct_s")
	b.ReportMetric(comp, "fifo_compressed_avg_jct_s")
	b.ReportMetric(tls, "tls_one_avg_jct_s")
	b.ReportMetric(both, "tls_one_compressed_avg_jct_s")
}
