GO ?= go

.PHONY: build test vet staticcheck race check bench fuzz examples serve-smoke scheduler-smoke openworld-smoke flow-equiv

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# staticcheck runs when the binary is on PATH (CI installs it; local
# environments without it skip rather than fail).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# Race-detect the whole module: psrpc runs real goroutines and sockets,
# sweep's parallel Engine drives concurrent simulations (now including
# the collective workload), and the sharded engine runs one simulation's
# shards on parallel goroutines (sim.ShardedKernel, sweep.RunSharded and
# their stress tests), so nothing is exempt.
race:
	$(GO) test -race -timeout 45m ./...

# examples builds every example and smoke-runs quickstart, so doc code
# paths can't rot silently.
examples:
	$(GO) build ./examples/...
	$(GO) run ./examples/quickstart

# serve-smoke boots a real tlsimd, submits a tiny experiment with
# tlctl, checks dedup + metrics, and SIGTERM-drains it.
serve-smoke:
	GO=$(GO) sh scripts/serve_smoke.sh

# scheduler-smoke runs the online cluster-scheduler sweep at smoke
# scale through the real experiments CLI, so the placement x end-host
# policy grid can't rot between releases.
scheduler-smoke:
	$(GO) run ./cmd/experiments -steps 300 -only scheduler -parallel 4

# openworld-smoke runs the open-world sweep at smoke scale through the
# real experiments CLI: arrival process x host heterogeneity x end-host
# policy over one unified PS+collective arrival stream.
openworld-smoke:
	$(GO) run ./cmd/experiments -steps 300 -only openworld -parallel 4

# flow-equiv runs the golden equivalence harness: every golden config is
# simulated on both the chunk fabric and the analytic flow fabric and the
# per-job JCTs must agree within the documented tolerance (DESIGN.md §13).
flow-equiv:
	$(GO) test ./internal/sweep -run '^TestFlowEquiv' -count=1 -v

check: build vet staticcheck test race examples serve-smoke scheduler-smoke openworld-smoke flow-equiv

# bench writes BENCH_sweep.json: trials/sec through the sequential and
# parallel Engine paths, plus ns/event and allocs/event in the kernel.
bench:
	$(GO) run ./cmd/bench -steps 600 -trials 8 -parallel 4 -out BENCH_sweep.json

# fuzz smoke-runs each fuzz target briefly (go permits one -fuzz
# pattern per invocation). The committed seed corpora always run as part
# of plain `go test`; this shoves randomized inputs on top.
FUZZTIME ?= 10s
fuzz:
	$(GO) test ./internal/qdisc -run '^$$' -fuzz '^FuzzClassifier$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/qdisc -run '^$$' -fuzz '^FuzzHTBDequeue$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/policy -run '^$$' -fuzz '^FuzzPolicyRank$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/flownet -run '^$$' -fuzz '^FuzzSolve$$' -fuzztime $(FUZZTIME)
