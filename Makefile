GO ?= go

.PHONY: build test vet race check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The psrpc package runs real goroutines and sockets; it is the one
# place data races could hide, so it gets a dedicated race-detector run.
race:
	$(GO) test -race ./internal/psrpc/...

check: build vet test race
