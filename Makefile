GO ?= go

.PHONY: build test vet race check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detect the whole module: psrpc runs real goroutines and sockets,
# and sweep's RunMany drives concurrent simulations (now including the
# collective workload), so nothing is exempt.
race:
	$(GO) test -race ./...

check: build vet test race
