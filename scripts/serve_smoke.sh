#!/bin/sh
# serve_smoke.sh — end-to-end smoke test of the tlsimd daemon:
# start it on a free port with a temp journal, submit a tiny
# experiment via tlctl, wait for the result, check health and metrics,
# then drain with SIGTERM and require a clean exit.
#
# Run via `make serve-smoke`. Exits non-zero on any failure.
set -eu

GO="${GO:-go}"
WORK="$(mktemp -d)"
ADDR="127.0.0.1:18421"
BASE="http://$ADDR"
DAEMON_PID=""

cleanup() {
    if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
        kill -9 "$DAEMON_PID" 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "serve-smoke: building binaries"
"$GO" build -o "$WORK/tlsimd" ./cmd/tlsimd
"$GO" build -o "$WORK/tlctl" ./cmd/tlctl

echo "serve-smoke: starting tlsimd on $ADDR"
"$WORK/tlsimd" -addr "$ADDR" -journal "$WORK/journal.jsonl" \
    -workers 2 -queue 8 -drain-timeout 60s >"$WORK/daemon.log" 2>&1 &
DAEMON_PID=$!

# Wait for readiness.
i=0
until "$WORK/tlctl" -addr "$BASE" health >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "serve-smoke: daemon never became ready" >&2
        cat "$WORK/daemon.log" >&2
        exit 1
    fi
    sleep 0.2
done
echo "serve-smoke: daemon ready"

echo "serve-smoke: submitting tiny experiment and waiting"
"$WORK/tlctl" -addr "$BASE" submit -policy tls-rr -jobs 2 \
    -custom-placement 2 -steps 100 -seed 3 -wait

echo "serve-smoke: identical resubmission must be a cache hit"
OUT="$("$WORK/tlctl" -addr "$BASE" submit -policy tls-rr -jobs 2 \
    -custom-placement 2 -steps 100 -seed 3)"
echo "$OUT"
case "$OUT" in
*"cache hit"*) ;;
*)
    echo "serve-smoke: expected a dedup cache hit, got: $OUT" >&2
    exit 1
    ;;
esac

echo "serve-smoke: listing jobs"
"$WORK/tlctl" -addr "$BASE" list

if command -v curl >/dev/null 2>&1; then
    echo "serve-smoke: checking /metrics"
    curl -fsS "$BASE/metrics" | grep -q "tlsimd_jobs_completed_total 1" || {
        echo "serve-smoke: metrics missing completed counter" >&2
        exit 1
    }
else
    echo "serve-smoke: curl not available; skipping metrics scrape"
fi

echo "serve-smoke: SIGTERM drain"
kill -TERM "$DAEMON_PID"
i=0
while kill -0 "$DAEMON_PID" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "serve-smoke: daemon did not exit after SIGTERM" >&2
        cat "$WORK/daemon.log" >&2
        exit 1
    fi
    sleep 0.2
done
wait "$DAEMON_PID" 2>/dev/null && STATUS=0 || STATUS=$?
if [ "$STATUS" -ne 0 ]; then
    echo "serve-smoke: daemon exited $STATUS after drain" >&2
    cat "$WORK/daemon.log" >&2
    exit 1
fi
DAEMON_PID=""
echo "serve-smoke: OK"
