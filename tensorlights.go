// Package tensorlights reproduces "Green, Yellow, Yield: End-Host
// Traffic Scheduling for Distributed Deep Learning with TensorLights"
// (Huang, Chen & Ng, IPDPS 2019) as a discrete-event simulation study.
//
// The package is a façade over the internal engine:
//
//   - internal/sim      — deterministic discrete-event kernel
//   - internal/qdisc    — pfifo / prio / htb / tbf / sfq disciplines
//   - internal/tc       — Linux-tc-style configuration layer
//   - internal/simnet   — host NICs, routed fabric topologies, chunked transfers
//   - internal/cpusim   — processor-sharing host CPUs
//   - internal/dl       — parameter-server training jobs
//   - internal/cluster  — testbed, Table I placements, scheduler
//   - internal/core     — the TensorLights controller (TLs-One, TLs-RR)
//   - internal/sweep    — per-figure experiment harness
//
// Quick start:
//
//	res, err := tensorlights.RunExperiment(tensorlights.ExperimentConfig{
//	    Policy:         tensorlights.TLsOne,
//	    PlacementIndex: 1,
//	    Steps:          3000,
//	})
//	fmt.Println(res.AvgJCT)
package tensorlights

import (
	"context"
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/dl"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/scheduler"
	"repro/internal/simnet"
	"repro/internal/sweep"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Version identifies the reproduction release.
const Version = "1.0.0"

// Policy selects the end-host traffic scheduling policy.
type Policy int

// The three policies evaluated in the paper.
const (
	// FIFO is the kernel default: first-come-first-serve at the NIC.
	FIFO Policy = iota
	// TLsOne assigns each contending job a static priority.
	TLsOne
	// TLsRR rotates priorities every RotateIntervalSec for fairness.
	TLsRR
	// TLsLPF re-ranks contending jobs least-progress-first every
	// RotateIntervalSec (an adaptive fairness extension beyond the
	// paper).
	TLsLPF
	// StaticRate pins each contending job to an equal static rate
	// share — the paper's §VII rate-control alternative, which is not
	// work-conserving.
	StaticRate
	// TLsLAS re-ranks least-attained-service first using measured
	// per-band dequeue bytes with Tiresias-style aging (adaptive,
	// telemetry-driven; beyond the paper).
	TLsLAS
	// TLsSRSF re-ranks shortest-remaining-service first from declared
	// target steps and observed bytes per iteration (adaptive).
	TLsSRSF
	// TLsInterleave offsets colocated jobs' priorities so their
	// communication bursts interleave instead of collide (adaptive,
	// CASSINI-inspired).
	TLsInterleave
)

// String names the policy as the paper does.
func (p Policy) String() string {
	if n := p.adaptiveName(); n != "" {
		return n
	}
	return p.core().String()
}

// adaptiveName returns the registry name for telemetry-driven policies
// that have no core.Policy enum value, "" otherwise.
func (p Policy) adaptiveName() string {
	switch p {
	case TLsLAS:
		return "TLs-LAS"
	case TLsSRSF:
		return "TLs-SRSF"
	case TLsInterleave:
		return "TLs-Interleave"
	default:
		return ""
	}
}

func (p Policy) core() core.Policy {
	switch p {
	case TLsOne:
		return core.PolicyOne
	case TLsRR:
		return core.PolicyRR
	case TLsLPF:
		return core.PolicyLPF
	case StaticRate:
		return core.PolicyStaticRate
	default:
		return core.PolicyFIFO
	}
}

// ExperimentConfig describes one grid-search experiment: NumJobs
// identical synchronous training jobs on a 21-host cluster, PSes placed
// per Table I's placement index.
type ExperimentConfig struct {
	// Policy is the end-host scheduling policy (default FIFO).
	Policy Policy
	// PlacementIndex selects Table I's placement #1..#8 (default 1,
	// all PSes colocated — the heaviest contention).
	PlacementIndex int
	// Placement, when non-empty (e.g. "5, 16"), overrides the index.
	Placement string
	// Model names a model from the zoo (default "resnet32").
	Model string
	// NumJobs, LocalBatch and Steps default to the paper's 21, 4 and
	// 30000. Tests should pass smaller Steps.
	NumJobs    int
	LocalBatch int
	Steps      int
	// Bands is the number of priority bands (default 6).
	Bands int
	// RotateIntervalSec is the re-ranking interval T for TLs-RR and the
	// adaptive policies (default 20 s).
	RotateIntervalSec float64
	// FeedbackIntervalSec is the telemetry sampling period for the
	// adaptive policies (default 5 s); ignored by the paper's static
	// policies.
	FeedbackIntervalSec float64
	// Topology selects the fabric behind the NIC ports: "" or "flat"
	// keeps the paper's single non-blocking switch; "leafspine" routes
	// cross-rack flows over a two-tier fabric whose core links are
	// contended, rate-limited ports.
	Topology string
	// FabricMode selects the fabric engine: "" or "chunk" simulates
	// every chunk hop-by-hop; "flow" runs the analytic flow-level model
	// (internal/flownet) — max-min fair bandwidth sharing under the
	// TensorLights priority bands, typically 10-100x fewer events with
	// matching per-job completion times on uncontended paths (DESIGN.md
	// §13). Incompatible with Sharded.
	FabricMode string
	// Racks partitions the hosts into racks on the leafspine topology
	// (default 3 — the 21-host testbed divides into 3 racks of 7).
	Racks int
	// UplinksPerLeaf is each rack's ECMP spine fan-out (default 2).
	UplinksPerLeaf int
	// Oversubscription is rack host bandwidth over rack core bandwidth
	// (default 1, non-blocking; 2 halves cross-rack capacity).
	Oversubscription float64
	// PlacementStrategy maps PS groups and collective rings onto racks:
	// "pack", "spread" or "network-aware" ("" = spread). Ignored on the
	// flat topology.
	PlacementStrategy string
	// Async selects asynchronous training.
	Async bool
	// Seed makes the run reproducible.
	Seed int64
	// MeasureUtilization enables CPU/NIC sampling.
	MeasureUtilization bool
	// TraceCSV, when non-nil, receives a CSV dump of all simulation
	// events (job lifecycle, barriers, flows, tc reconfigurations)
	// after the run.
	TraceCSV io.Writer
	// Faults enables deterministic fault injection for the run.
	Faults FaultConfig
	// Collective, when non-nil, adds synchronous all-reduce jobs to the
	// run. With NumJobs == 0 the cluster is all-reduce-only; with
	// NumJobs > 0 the PS and collective workloads share hosts and
	// TensorLights schedules both uniformly.
	Collective *CollectiveConfig
	// Scheduler, when non-nil, replaces the static grid workload with
	// the online cluster-scheduler experiment: Poisson arrivals of
	// mixed PS + all-reduce jobs on an oversubscribed leaf-spine
	// fabric, placed per arrival by the cluster-scheduler tier
	// (internal/scheduler) under the configured end-host Policy. The
	// placement-related fields above (PlacementIndex, Placement,
	// Topology, Racks, PlacementStrategy, Collective) are ignored —
	// the scheduler tier owns placement.
	Scheduler *SchedulerConfig
	// OpenWorld, when non-nil, replaces the static grid workload with
	// the open-world experiment: a unified stream of PS, ring and tree
	// jobs drawn from a pluggable arrival process (Poisson, bursty or
	// trace replay), placed per arrival by the cluster-scheduler tier
	// on an oversubscribed leaf-spine fabric, optionally over
	// heterogeneous hosts. The placement-related fields above are
	// ignored — the scheduler tier owns placement. Incompatible with
	// Scheduler and Sharded.
	OpenWorld *OpenWorldConfig
	// Sharded, when non-nil, executes the run on the sharded engine:
	// the hosts are partitioned into Shards event kernels advancing in
	// conservative lockstep windows (see DESIGN.md §12), and the
	// workload is the shard-stable cell-confined grid (each job's PS
	// and workers live inside one placement cell) instead of the
	// Table I placement — PlacementIndex/Placement are ignored. The
	// results are byte-identical at every shard count; only wall clock
	// differs. Incompatible with Scheduler, MeasureUtilization and the
	// feedback-driven adaptive policies.
	Sharded *ShardedConfig
}

// ShardedConfig selects the sharded engine for an experiment.
type ShardedConfig struct {
	// Shards is the number of event-kernel partitions (default 2).
	Shards int
	// Cells is the number of placement cells jobs are confined to
	// (default Shards). Cells must split into whole shards, so a fixed
	// Cells lets the same workload run under several shard counts.
	Cells int
	// Sequential forces shard windows onto one goroutine (for
	// debugging); by default windows execute in parallel.
	Sequential bool
}

func (s *ShardedConfig) options() sweep.ShardOptions {
	opt := sweep.ShardOptions{
		Shards:          s.Shards,
		PlacementShards: s.Cells,
		Parallel:        !s.Sequential,
	}
	if opt.Shards == 0 {
		opt.Shards = 2
	}
	return opt
}

// SchedulerConfig describes the online cluster-scheduler experiment.
type SchedulerConfig struct {
	// Placement names the cluster-scheduler placement policy: random,
	// pack, spread, network-aware, contention-aware or phase-aware
	// (default contention-aware).
	Placement string
	// Oversubscription is the leaf-spine core oversubscription ratio
	// (default 2).
	Oversubscription float64
	// Jobs is the number of arrivals (default 9).
	Jobs int
	// ArrivalRatePerSec is the Poisson arrival rate (default 1/s).
	ArrivalRatePerSec float64
}

// OpenWorldConfig describes the open-world experiment: one arrival
// stream mixing PS and collective jobs through the unified workload
// layer (internal/workload), placed online by the cluster-scheduler
// tier.
type OpenWorldConfig struct {
	// Arrivals names the arrival process: "poisson" (default),
	// "bursty" (Markov-modulated on/off) or "trace" (CSV replay).
	Arrivals string
	// Trace optionally supplies the replay CSV for Arrivals ==
	// "trace" in the workload.ParseTrace schema
	// (at_sec,kind,model,tasks,local_batch,iterations). When nil the
	// built-in demo trace is replayed.
	Trace io.Reader
	// Mix selects the job mix for stochastic arrivals: "mixed"
	// (default), "ps" or "collective". Ignored for trace replay —
	// the trace names each job's kind and model.
	Mix string
	// Heterogeneous slows every third host to 60% reference speed.
	Heterogeneous bool
	// Placement names the cluster-scheduler placement policy: random,
	// pack, spread, network-aware, contention-aware or phase-aware
	// (default contention-aware).
	Placement string
	// Oversubscription is the leaf-spine core oversubscription ratio
	// (default 2).
	Oversubscription float64
	// Jobs is the number of arrivals (default 9; trace replay always
	// runs the whole trace).
	Jobs int
	// ArrivalRatePerSec scales the stochastic arrival processes
	// (default 1/s).
	ArrivalRatePerSec float64
}

// CollectiveJobIDBase is the ID of the first collective job: ring i is
// job CollectiveJobIDBase+i, disjoint from PS job IDs (0..NumJobs-1).
// Fault plans target a ring peer by naming a job at or above this base.
const CollectiveJobIDBase = cluster.CollectiveIDBase

// CollectiveConfig describes an all-reduce workload: Jobs rings of
// Ranks ranks each, placed by ring order over the cluster's hosts.
type CollectiveConfig struct {
	// Jobs is the number of all-reduce jobs (default 3).
	Jobs int
	// Ranks is the ring size — ranks per job, one per host (default 4).
	Ranks int
	// Stride offsets ring i's first host by i*Stride. The default 0
	// aligns every ring on the same hosts: maximal NIC contention, the
	// collective analogue of placement #1.
	Stride int
	// Algorithm is "ring" (bucketized ring all-reduce, the default) or
	// "tree" (binomial tree reduce + broadcast).
	Algorithm string
	// Model names the trained model (default "alexnet", whose 244 MB
	// updates make the rings communication-bound).
	Model string
	// LocalBatch is the per-rank batch size (default 1).
	LocalBatch int
	// Iterations is the training length (default Steps/30, min 2).
	Iterations int
	// Buckets is the gradient-bucket count per iteration (default 4).
	Buckets int
}

// WorkerCrash schedules one worker-task crash.
type WorkerCrash struct {
	Job    int     // job ID
	Worker int     // worker index within the job
	AtSec  float64 // crash time (simulated seconds)
}

// FaultConfig enables deterministic fault injection: the schedule is
// derived from the experiment seed, so the same config reproduces the
// same faults — and the same results — on every run. The zero value
// injects nothing.
type FaultConfig struct {
	// FlapPSHosts takes every parameter-server host's NIC down for
	// FlapDurationSec every FlapEverySec, starting at FlapFirstAtSec,
	// until HorizonSec. FlapJitterSec adds a seeded per-window offset.
	FlapPSHosts     bool
	FlapFirstAtSec  float64
	FlapEverySec    float64
	FlapDurationSec float64
	FlapJitterSec   float64
	// HorizonSec bounds the flap schedule (required when flapping).
	HorizonSec float64
	// DropProb, when positive, adds a chunk-loss window of the same
	// duration right after each flap (lossy post-flap recovery).
	DropProb float64
	// TCOutage also fails tc actuation on the host during each flap,
	// exercising the controller's retry/fallback/reconcile paths.
	TCOutage bool
	// Crashes lists worker crashes to schedule.
	Crashes []WorkerCrash
	// PeerCrashes lists collective-rank crashes (Worker = rank index;
	// Job must be a collective job's ID). A crashed peer stalls its
	// whole ring until detection restarts the iteration.
	PeerCrashes []WorkerCrash
	// DetectTimeoutSec, RestartBackoffSec and MaxRestarts tune each
	// job's crashed-worker recovery (see dl.RecoveryConfig). With
	// DetectTimeoutSec zero, a crashed worker wedges its job's barrier.
	DetectTimeoutSec  float64
	RestartBackoffSec float64
	MaxRestarts       int
}

func (f FaultConfig) plan() faults.Plan {
	p := faults.Plan{
		FlapPSHosts:     f.FlapPSHosts,
		FlapFirstAtSec:  f.FlapFirstAtSec,
		FlapEverySec:    f.FlapEverySec,
		FlapDurationSec: f.FlapDurationSec,
		FlapJitterSec:   f.FlapJitterSec,
		HorizonSec:      f.HorizonSec,
		DropProb:        f.DropProb,
		TCOutage:        f.TCOutage,
	}
	for _, c := range f.Crashes {
		p.Crashes = append(p.Crashes, faults.CrashPlan{
			Job: c.Job, Worker: c.Worker, AtSec: c.AtSec,
		})
	}
	for _, c := range f.PeerCrashes {
		p.PeerCrashes = append(p.PeerCrashes, faults.CrashPlan{
			Job: c.Job, Worker: c.Worker, AtSec: c.AtSec,
		})
	}
	return p
}

// Result summarizes one experiment.
type Result struct {
	// JCTs holds each job's completion time in seconds.
	JCTs []float64
	// AvgJCT is the mean of JCTs — the paper's headline metric.
	AvgJCT float64
	// BarrierWaitMean and BarrierWaitVariance summarize the pooled
	// per-barrier wait distributions (straggler indicators).
	BarrierWaitMean     float64
	BarrierWaitVariance float64
	// Utilization holds per-host active-window utilization when
	// MeasureUtilization was set.
	Utilization []HostUtilization
	// SimulatedSeconds is the simulated makespan.
	SimulatedSeconds float64
	// Events is the number of discrete events fired.
	Events uint64
	// TcReconfigurations counts TensorLights host reconfigurations.
	TcReconfigurations int

	// Fault-injection accounting (all zero when Faults was inactive).
	WorkerRestarts  int
	DegradedWorkers int
	// FailedJobs lists jobs that lost every worker; they have no JCT.
	FailedJobs    []int
	DroppedChunks uint64
	// TcRetries/TcFallbacks/TcRepairs count the controller's reactions
	// to failed tc actuation: backoff retries, FIFO fallbacks, and
	// reconcile-loop repairs that restored the priority bands.
	TcRetries   int
	TcFallbacks int
	TcRepairs   int

	// Collective-workload accounting (empty without Collective).
	CollectiveJCTs   []float64
	CollectiveAvgJCT float64
	// RingStalls counts whole-ring stalls caused by crashed peers.
	RingStalls int
}

// HostUtilization is one host's active-window utilization in [0,1].
type HostUtilization struct {
	Host   int
	CPU    float64
	NetIn  float64
	NetOut float64
}

// RunExperiment executes one experiment to completion.
func RunExperiment(cfg ExperimentConfig) (*Result, error) {
	return RunExperimentContext(context.Background(), cfg)
}

// RunExperimentContext is RunExperiment with cancellation: when ctx is
// cancelled (SIGINT in tlsim, a per-job deadline in tlsimd) the
// simulation stops between events and the context error is returned
// wrapped. If TraceCSV was set, the events collected so far are still
// written, preceded by a "# partial trace" comment line so a truncated
// dump can never be mistaken for a complete run.
func RunExperimentContext(ctx context.Context, cfg ExperimentConfig) (*Result, error) {
	switch cfg.FabricMode {
	case "", simnet.ModeChunk, simnet.ModeFlow:
	default:
		return nil, fmt.Errorf("tensorlights: unknown fabric mode %q (want %q or %q)",
			cfg.FabricMode, simnet.ModeChunk, simnet.ModeFlow)
	}
	if cfg.Scheduler != nil {
		if cfg.Sharded != nil {
			return nil, fmt.Errorf("tensorlights: Sharded is incompatible with Scheduler (the scheduler trial owns its own kernel)")
		}
		if cfg.OpenWorld != nil {
			return nil, fmt.Errorf("tensorlights: OpenWorld is incompatible with Scheduler (set exactly one)")
		}
		return runSchedulerExperiment(ctx, cfg)
	}
	if cfg.OpenWorld != nil {
		if cfg.Sharded != nil {
			return nil, fmt.Errorf("tensorlights: Sharded is incompatible with OpenWorld (the open-world trial owns its own kernel)")
		}
		return runOpenWorldExperiment(ctx, cfg)
	}
	rc, err := toRunConfig(cfg)
	if err != nil {
		return nil, err
	}
	var buf *trace.Buffer
	if cfg.TraceCSV != nil {
		buf = &trace.Buffer{}
		rc.Tracer = buf
	}
	var res *sweep.RunResult
	if cfg.Sharded != nil {
		if cfg.FabricMode == simnet.ModeFlow {
			return nil, fmt.Errorf("tensorlights: FabricMode %q is incompatible with Sharded (the analytic engine recomputes global rates on one kernel)", cfg.FabricMode)
		}
		// The sharded engine runs bounded windows to completion; it has
		// no between-event cancellation hook, so ctx only gates entry.
		if err = ctx.Err(); err == nil {
			res, err = sweep.RunSharded(rc, cfg.Sharded.options())
		}
	} else {
		res, err = sweep.RunContext(ctx, rc)
	}
	if err != nil {
		if buf != nil && ctx.Err() != nil {
			// Best effort: the run was cancelled, not broken — dump what
			// we have, clearly marked. A dump error cannot outrank the
			// cancellation itself.
			fmt.Fprintf(cfg.TraceCSV, "# partial trace: experiment cancelled before completion (%v)\n", ctx.Err())
			_ = buf.WriteCSV(cfg.TraceCSV)
		}
		return nil, err
	}
	if buf != nil {
		if err := buf.WriteCSV(cfg.TraceCSV); err != nil {
			return nil, fmt.Errorf("tensorlights: trace dump: %w", err)
		}
	}
	out := &Result{
		JCTs:                res.JCTs,
		AvgJCT:              res.AvgJCT(),
		BarrierWaitMean:     metrics.Mean(res.BarrierMeans),
		BarrierWaitVariance: metrics.Mean(res.BarrierVars),
		SimulatedSeconds:    res.SimTime,
		Events:              res.Events,
		TcReconfigurations:  res.Reconfigs,
		WorkerRestarts:      res.Restarts,
		DegradedWorkers:     res.DegradedWorkers,
		FailedJobs:          res.FailedJobs,
		DroppedChunks:       res.DroppedChunks,
		TcRetries:           res.TcRecovery.Retries,
		TcFallbacks:         res.TcRecovery.Fallbacks,
		TcRepairs:           res.TcRecovery.Repairs,
		CollectiveJCTs:      res.CollectiveJCTs,
		CollectiveAvgJCT:    metrics.Mean(res.CollectiveJCTs),
		RingStalls:          res.CollectiveStalls,
	}
	for _, u := range res.Utils {
		out.Utilization = append(out.Utilization, HostUtilization{
			Host: u.Host, CPU: u.CPU, NetIn: u.NetIn, NetOut: u.NetOut,
		})
	}
	return out, nil
}

// runSchedulerExperiment maps an ExperimentConfig with Scheduler set
// onto one online cluster-scheduler trial.
func runSchedulerExperiment(ctx context.Context, cfg ExperimentConfig) (*Result, error) {
	place, err := scheduler.ParsePolicy(cfg.Scheduler.Placement)
	if err != nil {
		return nil, err
	}
	if cfg.Scheduler.Placement == "" {
		place = scheduler.PolicyContentionAware
	}
	tc := sweep.SchedulerTrialConfig{
		Steps:             cfg.Steps,
		Seed:              cfg.Seed,
		Oversub:           cfg.Scheduler.Oversubscription,
		Placement:         place,
		PolicyName:        cfg.Policy.String(),
		Jobs:              cfg.Scheduler.Jobs,
		ArrivalRatePerSec: cfg.Scheduler.ArrivalRatePerSec,
		FabricMode:        cfg.FabricMode,
	}
	var buf *trace.Buffer
	if cfg.TraceCSV != nil {
		buf = &trace.Buffer{}
		tc.Tracer = buf
	}
	res, err := sweep.SchedulerTrial(ctx, tc)
	if err != nil {
		if buf != nil && ctx.Err() != nil {
			fmt.Fprintf(cfg.TraceCSV, "# partial trace: experiment cancelled before completion (%v)\n", ctx.Err())
			_ = buf.WriteCSV(cfg.TraceCSV)
		}
		return nil, err
	}
	if buf != nil {
		if err := buf.WriteCSV(cfg.TraceCSV); err != nil {
			return nil, fmt.Errorf("tensorlights: trace dump: %w", err)
		}
	}
	return &Result{
		JCTs:               res.JCTs,
		AvgJCT:             res.AvgJCT,
		SimulatedSeconds:   res.MakespanSec,
		Events:             res.Events,
		TcReconfigurations: res.Reconfigs,
	}, nil
}

// runOpenWorldExperiment maps an ExperimentConfig with OpenWorld set
// onto one open-world trial.
func runOpenWorldExperiment(ctx context.Context, cfg ExperimentConfig) (*Result, error) {
	place, err := scheduler.ParsePolicy(cfg.OpenWorld.Placement)
	if err != nil {
		return nil, err
	}
	if cfg.OpenWorld.Placement == "" {
		place = scheduler.PolicyContentionAware
	}
	tc := sweep.OpenWorldTrialConfig{
		Steps:             cfg.Steps,
		Seed:              cfg.Seed,
		Arrivals:          cfg.OpenWorld.Arrivals,
		Heterogeneous:     cfg.OpenWorld.Heterogeneous,
		Oversub:           cfg.OpenWorld.Oversubscription,
		Placement:         place,
		PolicyName:        cfg.Policy.String(),
		Jobs:              cfg.OpenWorld.Jobs,
		ArrivalRatePerSec: cfg.OpenWorld.ArrivalRatePerSec,
		MixName:           cfg.OpenWorld.Mix,
		FabricMode:        cfg.FabricMode,
	}
	if cfg.OpenWorld.Trace != nil {
		tr, err := workload.ParseTrace(cfg.OpenWorld.Trace)
		if err != nil {
			return nil, err
		}
		tc.Trace = tr
	}
	var buf *trace.Buffer
	if cfg.TraceCSV != nil {
		buf = &trace.Buffer{}
		tc.Tracer = buf
	}
	res, err := sweep.OpenWorldTrial(ctx, tc)
	if err != nil {
		if buf != nil && ctx.Err() != nil {
			fmt.Fprintf(cfg.TraceCSV, "# partial trace: experiment cancelled before completion (%v)\n", ctx.Err())
			_ = buf.WriteCSV(cfg.TraceCSV)
		}
		return nil, err
	}
	if buf != nil {
		if err := buf.WriteCSV(cfg.TraceCSV); err != nil {
			return nil, fmt.Errorf("tensorlights: trace dump: %w", err)
		}
	}
	return &Result{
		JCTs:               res.JCTs,
		AvgJCT:             res.AvgJCT,
		SimulatedSeconds:   res.MakespanSec,
		Events:             res.Events,
		TcReconfigurations: res.Reconfigs,
	}, nil
}

func toRunConfig(cfg ExperimentConfig) (sweep.RunConfig, error) {
	var zero sweep.RunConfig
	if cfg.PlacementIndex == 0 {
		cfg.PlacementIndex = 1
	}
	placement, err := cluster.PlacementByIndex(cfg.PlacementIndex)
	if err != nil {
		return zero, err
	}
	if cfg.Placement != "" {
		placement, err = cluster.ParsePlacement(cfg.Placement)
		if err != nil {
			return zero, err
		}
	}
	model := dl.ResNet32
	if cfg.Model != "" {
		model, err = dl.ModelByName(cfg.Model)
		if err != nil {
			return zero, err
		}
	}
	topo, strat, err := cfg.topology()
	if err != nil {
		return zero, err
	}
	if topo.Kind == simnet.TopologyLeafSpine {
		placement, err = cluster.RackAwarePlacement(placement, testbedHosts, topo, strat)
		if err != nil {
			return zero, err
		}
	}
	rc := sweep.RunConfig{
		Label:       fmt.Sprintf("%s-p%d", cfg.Policy, cfg.PlacementIndex),
		Cluster:     cluster.Config{Seed: cfg.Seed, Net: simnet.Config{Topology: topo, Mode: cfg.FabricMode}},
		Model:       model,
		NumJobs:     cfg.NumJobs,
		LocalBatch:  cfg.LocalBatch,
		TargetSteps: cfg.Steps,
		Placement:   placement,
		Async:       cfg.Async,
		TLs: core.Config{
			Policy:              cfg.Policy.core(),
			Bands:               cfg.Bands,
			IntervalSec:         cfg.RotateIntervalSec,
			FeedbackIntervalSec: cfg.FeedbackIntervalSec,
		},
	}
	// Adaptive policies have no core.Policy enum value; they resolve by
	// registry name. The sweep layer attaches their Feedback collector.
	if name := cfg.Policy.adaptiveName(); name != "" {
		rc.TLs.PolicyName = name
	}
	if cfg.MeasureUtilization {
		rc.SampleUtilEvery = 1
	}
	rc.Faults = cfg.Faults.plan()
	rc.Recovery = dl.RecoveryConfig{
		DetectTimeoutSec:  cfg.Faults.DetectTimeoutSec,
		RestartBackoffSec: cfg.Faults.RestartBackoffSec,
		MaxRestarts:       cfg.Faults.MaxRestarts,
	}
	if cfg.Collective != nil {
		specs, err := collectiveSpecs(cfg, topo, strat)
		if err != nil {
			return zero, err
		}
		rc.CollectiveSpecs = specs
	}
	return rc, nil
}

// testbedHosts is the paper's cluster size; the façade always runs it.
const testbedHosts = 21

// topology resolves the experiment's fabric config and rack-placement
// strategy, applying the façade-level leafspine defaults.
func (cfg ExperimentConfig) topology() (simnet.TopologyConfig, cluster.Strategy, error) {
	strat, err := cluster.ParseStrategy(cfg.PlacementStrategy)
	if err != nil {
		return simnet.TopologyConfig{}, "", err
	}
	kind := simnet.TopologyKind(cfg.Topology)
	if kind == "" {
		kind = simnet.TopologyFlat
	}
	topo := simnet.TopologyConfig{Kind: kind}
	if kind != simnet.TopologyFlat {
		topo.Racks = cfg.Racks
		if topo.Racks == 0 {
			topo.Racks = 3
		}
		topo.UplinksPerLeaf = cfg.UplinksPerLeaf
		topo.Oversubscription = cfg.Oversubscription
	}
	if err := topo.ValidateFor(testbedHosts); err != nil {
		return simnet.TopologyConfig{}, "", err
	}
	return topo, strat, nil
}

// collectiveSpecs expands CollectiveConfig into per-job specs. On a
// leafspine topology the rings are placed rack-aware per the strategy
// (Stride only applies on flat, where ring layout is host-arithmetic).
func collectiveSpecs(cfg ExperimentConfig, topo simnet.TopologyConfig, strat cluster.Strategy) ([]collective.JobSpec, error) {
	cc := *cfg.Collective
	if cc.Jobs <= 0 {
		cc.Jobs = 3
	}
	if cc.Ranks <= 0 {
		cc.Ranks = 4
	}
	if cc.Model == "" {
		cc.Model = "alexnet"
	}
	if cc.LocalBatch <= 0 {
		cc.LocalBatch = 1
	}
	if cc.Iterations <= 0 {
		steps := cfg.Steps
		if steps <= 0 {
			steps = 30_000
		}
		cc.Iterations = steps / 30
		if cc.Iterations < 2 {
			cc.Iterations = 2
		}
	}
	alg := collective.Ring
	if cc.Algorithm != "" {
		alg = collective.Algorithm(cc.Algorithm)
		if err := alg.Validate(); err != nil {
			return nil, err
		}
	}
	model, err := dl.ModelByName(cc.Model)
	if err != nil {
		return nil, err
	}
	var rings [][]int
	if topo.Kind == simnet.TopologyLeafSpine {
		rings, err = cluster.RackRingPlacement(cc.Jobs, cc.Ranks, testbedHosts, topo, strat)
	} else {
		rings, err = cluster.RingPlacement(cc.Jobs, cc.Ranks, testbedHosts, cc.Stride)
	}
	if err != nil {
		return nil, err
	}
	specs := cluster.CollectiveSpecs(model, rings, alg, cc.LocalBatch, cc.Iterations)
	for i := range specs {
		specs[i].Buckets = cc.Buckets
	}
	return specs, nil
}

// ReproOptions scales the per-figure reproduction runs. Zero values run
// the paper's full scale (30 000 global steps).
type ReproOptions struct {
	Steps       int
	Seed        int64
	Parallelism int
}

func (o ReproOptions) sweep() sweep.Options {
	return sweep.Options{Steps: o.Steps, Seed: o.Seed, Parallelism: o.Parallelism}
}

// ReproduceFigure2 regenerates Figure 2 (JCT vs placement under FIFO)
// and returns its rendered table.
func ReproduceFigure2(o ReproOptions) (string, error) {
	r, err := sweep.Figure2(o.sweep())
	if err != nil {
		return "", err
	}
	return r.Render(), nil
}

// ReproduceFigure3 regenerates Figure 3 (barrier wait distributions,
// placements #1 vs #8).
func ReproduceFigure3(o ReproOptions) (string, error) {
	r, err := sweep.Figure3(o.sweep())
	if err != nil {
		return "", err
	}
	return r.Render(), nil
}

// ReproduceFigure5a regenerates Figure 5a (normalized JCT by placement).
func ReproduceFigure5a(o ReproOptions) (string, error) {
	r, err := sweep.Figure5a(o.sweep())
	if err != nil {
		return "", err
	}
	return r.Render(), nil
}

// ReproduceFigure5b regenerates Figure 5b (normalized JCT by batch).
func ReproduceFigure5b(o ReproOptions) (string, error) {
	r, err := sweep.Figure5b(o.sweep())
	if err != nil {
		return "", err
	}
	return r.Render(), nil
}

// ReproduceFigure6 regenerates Figure 6 (wait distributions by policy).
func ReproduceFigure6(o ReproOptions) (string, error) {
	r, err := sweep.Figure6(o.sweep())
	if err != nil {
		return "", err
	}
	return r.Render(), nil
}

// ReproduceTableII regenerates Table II (normalized utilization).
func ReproduceTableII(o ReproOptions) (string, error) {
	r, err := sweep.TableII(o.sweep())
	if err != nil {
		return "", err
	}
	return r.Render(), nil
}

// ReproduceCollective runs the collective-workload comparison: ring
// all-reduce jobs — scheduled by TensorLights exactly like PS jobs,
// one priority band per job keyed by the job's collective port — under
// FIFO, TLs-One and TLs-RR, on an all-reduce-only cluster and on a
// mixed PS + all-reduce cluster where the PS host carries both traffic
// classes.
func ReproduceCollective(o ReproOptions) (string, error) {
	r, err := sweep.Collective(o.sweep())
	if err != nil {
		return "", err
	}
	return r.Render(), nil
}

// ReproduceFaultRecovery runs the fault-injection experiment: the
// placement #1 workload fault-free and under a seeded fault schedule
// (PS-host flaps, tc outages, worker crashes) for FIFO, TLs-One and
// TLs-RR, showing each layer's recovery path and the reconcile loop
// restoring priority bands after every fault.
func ReproduceFaultRecovery(o ReproOptions) (string, error) {
	r, err := sweep.FaultRecovery(o.sweep())
	if err != nil {
		return "", err
	}
	return r.Render(), nil
}

// ReproducePolicyComparison runs every scheduling policy — FIFO, the
// paper's TLs-One/TLs-RR, and the telemetry-driven TLs-LAS, TLs-SRSF
// and TLs-Interleave — on the headline 21-job colocated-PS scenario and
// reports avg/p95/max JCT per policy plus the best adaptive policy's
// tail improvement over blind rotation.
func ReproducePolicyComparison(o ReproOptions) (string, error) {
	r, err := sweep.PolicySweep(o.sweep())
	if err != nil {
		return "", err
	}
	return r.Render(), nil
}

// ReproduceTopology runs the leaf-spine fabric experiment: the
// collective AlexNet rings swept across core oversubscription ratios
// (1:1, 2:1, 4:1), placement strategies (naive spread vs CASSINI-style
// network-aware packing) and scheduling policies, reporting per-cell
// JCTs, cross-rack traffic ratios, peak core-link utilization and the
// headline placement gaps — the in-network-contention axis the paper's
// single-switch testbed cannot explore.
func ReproduceTopology(o ReproOptions) (string, error) {
	r, err := sweep.TopologySweep(o.sweep())
	if err != nil {
		return "", err
	}
	return r.Render(), nil
}

// ReproduceScheduler runs the cluster-scheduler experiment: an online
// stream of mixed PS + all-reduce arrivals on an oversubscribed
// leaf-spine fabric, swept across cluster-scheduler placement policies
// (random, pack, spread, network-aware, contention-aware, phase-aware)
// crossed with end-host TensorLights policies, reporting per-cell
// avg/p95 JCT, cross-rack traffic, phase shifts and the headline
// spread-vs-smart placement gaps — how much of the contention fight a
// smarter cluster tier wins before the end-host bands see a packet.
func ReproduceScheduler(o ReproOptions) (string, error) {
	r, err := sweep.SchedulerSweep(o.sweep())
	if err != nil {
		return "", err
	}
	return r.Render(), nil
}

// ReproduceOpenWorld runs the open-world sweep: one unified stream of
// PS, ring and tree jobs per cell, crossed over arrival processes
// (Poisson, bursty, trace replay) × host fleets (homogeneous vs every
// third host at 60% speed) × end-host policies (FIFO, TLs-RR, TLs-LAS,
// TLs-SRSF) on the oversubscribed leaf-spine fabric with online
// contention-aware placement, reporting per-cell avg/p95 JCT, job-kind
// counts, cross-rack traffic and the headline heterogeneity tax.
func ReproduceOpenWorld(o ReproOptions) (string, error) {
	r, err := sweep.OpenWorldSweep(o.sweep())
	if err != nil {
		return "", err
	}
	return r.Render(), nil
}

// ReproduceReplicate runs the replicate sweep: placement #1 under FIFO,
// TLs-One and TLs-RR across consecutive seeds, reporting the average JCT
// per policy with error bars.
func ReproduceReplicate(o ReproOptions) (string, error) {
	r, err := sweep.ReplicateSweep(o.sweep())
	if err != nil {
		return "", err
	}
	return r.Render(), nil
}

// ReproduceChurn runs the arrival/departure comparison: a Poisson stream
// of mixed-model jobs bin-packed onto the testbed, under FIFO, TLs-One
// and TLs-RR.
func ReproduceChurn(o ReproOptions) (string, error) {
	r, err := sweep.ChurnSweep(o.sweep())
	if err != nil {
		return "", err
	}
	return r.Render(), nil
}

// ReplicateStats aggregates one headline metric across replicate seeds.
type ReplicateStats struct {
	N    int
	Mean float64
	Std  float64
	Min  float64
	Max  float64
}

// String renders mean ± std.
func (r ReplicateStats) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", r.Mean, r.Std, r.N)
}

// ReplicateExperiment runs cfg for n consecutive seeds starting at
// cfg.Seed — fanned across parallelism concurrent trials (0 uses
// GOMAXPROCS, 1 runs sequentially) — and aggregates the average JCT.
// Each trial owns an isolated simulation, so results are independent of
// the parallelism level. TraceCSV is rejected: one writer cannot serve
// concurrent trials.
func ReplicateExperiment(cfg ExperimentConfig, n, parallelism int) (ReplicateStats, error) {
	return ReplicateExperimentContext(context.Background(), cfg, n, parallelism)
}

// ReplicateExperimentContext is ReplicateExperiment with cancellation:
// once ctx is done no further seed starts and in-flight trials stop
// between events (no stats are returned for an interrupted sweep — a
// partial mean would be silently biased toward fast seeds).
func ReplicateExperimentContext(ctx context.Context, cfg ExperimentConfig, n, parallelism int) (ReplicateStats, error) {
	if cfg.TraceCSV != nil {
		return ReplicateStats{}, fmt.Errorf("tensorlights: ReplicateExperiment does not support TraceCSV; trace a single RunExperiment instead")
	}
	s, err := sweep.ReplicateParallelContext(ctx, n, cfg.Seed, parallelism, func(ctx context.Context, seed int64) (float64, error) {
		c := cfg
		c.Seed = seed
		res, err := RunExperimentContext(ctx, c)
		if err != nil {
			return 0, err
		}
		return res.AvgJCT, nil
	})
	if err != nil {
		return ReplicateStats{}, err
	}
	return ReplicateStats{N: s.N, Mean: s.Mean, Std: s.Std, Min: s.Min, Max: s.Max}, nil
}

// Models lists the built-in model zoo names.
func Models() []string {
	var names []string
	for _, m := range dl.Zoo() {
		names = append(names, m.Name)
	}
	return names
}

// Placements renders Table I: the studied PS placements.
func Placements() string {
	t := ""
	for _, p := range cluster.Placements21() {
		t += fmt.Sprintf("#%d: %s\n", p.Index, p.String())
	}
	return t
}
